"""The adaptive probabilistic reliable broadcast (Section 4).

Two activities run side by side, exactly as the paper's modular design
prescribes:

1. **Broadcast activity** — Algorithm 1 verbatim, but over the process's
   *approximated* topology ``Lambda_k`` and configuration ``C_k`` instead
   of the true ``(G, C)``.
2. **Knowledge activity** — Algorithm 4: periodic heartbeats carrying
   ``(Lambda_k, C_k)``, staleness sweeps (Event 2), and self-reliability
   ticks (Events 3/4), all feeding the Bayesian estimates.

If the system stays stable long enough, ``(Lambda_k, C_k)`` converges to
``(G, C)`` and the broadcast plans coincide with the optimal algorithm's —
the adaptiveness property of Definition 2 (integration-tested).

Knowledge is modelled as held in stable storage: per-step crashes drop the
messages of the affected step but do not erase ``C_k`` (see DESIGN.md §3
note 2 — wiping all estimates at every crashed step would make convergence
under ``P > 0`` impossible, and the paper's stable storage exists for
precisely this kind of state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.core.broadcast import DataMessage, MessageId, ReliableBroadcastProcess
from repro.core.knowledge import HeartbeatSnapshot, KnowledgeParameters, ProcessView
from repro.core.mrt import maximum_reliability_tree, reachable_processes
from repro.core.optimize import OptimizeResult, optimize
from repro.core.tree import SpanningTree
from repro.core.viewtable import VectorSnapshot, VectorView
from repro.errors import ValidationError
from repro.sim.monitors import BroadcastMonitor
from repro.sim.network import Network
from repro.sim.trace import MessageCategory
from repro.types import ProcessId

ViewType = Union[ProcessView, VectorView]


@dataclass(frozen=True)
class HeartbeatMessage:
    """Wrapper for the ``(Lambda_j, C_j)`` snapshot on the wire."""

    snapshot: Union[HeartbeatSnapshot, VectorSnapshot]


@dataclass(frozen=True)
class PiggybackedData:
    """A data message carrying the sender's knowledge snapshot.

    Section 4.1: *"although nodes keep exchanging information with their
    neighbors, this data can also be opportunistically piggybacked in
    gossip messages, saving communication bandwidth."*  When
    ``AdaptiveParameters.piggyback_knowledge`` is set, every forwarded
    application message doubles as a heartbeat for the receiving
    neighbour (data always travels along tree links, which are direct
    links, so Event 1's neighbour requirement holds).
    """

    data: DataMessage
    snapshot: Union[HeartbeatSnapshot, VectorSnapshot]


@dataclass(frozen=True)
class AdaptiveParameters:
    """Tunables of the adaptive protocol.

    Attributes:
        knowledge: heartbeat period, interval count, tick period.
        view_impl: "vector" (NumPy tables, default — use for any
            non-trivial system size) or "object" (didactic reference
            implementation; behaviourally identical).
        recompute_at_receiver: re-run ``optimize`` at every hop as in
            Algorithm 1 line 9 (same result, more CPU).
        piggyback_knowledge: attach the sender's ``(Lambda, C)`` snapshot
            to every forwarded data message (Section 4.1's bandwidth
            optimisation) so application traffic doubles as heartbeats.
    """

    knowledge: KnowledgeParameters = field(default_factory=KnowledgeParameters)
    view_impl: str = "vector"
    recompute_at_receiver: bool = False
    piggyback_knowledge: bool = False

    def __post_init__(self) -> None:
        if self.view_impl not in ("vector", "object"):
            raise ValidationError(
                f"view_impl must be 'vector' or 'object', got {self.view_impl!r}"
            )


class AdaptiveBroadcast(ReliableBroadcastProcess):
    """Adaptive reliable broadcast process (broadcast + knowledge activities).

    Args:
        pid: process id.
        network: simulated network (only its *topology neighbourhood* is
            consulted for wiring; reliability knowledge is learned).
        monitor: delivery monitor.
        k_target: reliability target ``K``.
        params: see :class:`AdaptiveParameters`.
    """

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        monitor: BroadcastMonitor,
        k_target: float = 0.99,
        params: Optional[AdaptiveParameters] = None,
    ) -> None:
        super().__init__(pid, network, monitor, k_target)
        self.params = params or AdaptiveParameters()
        kp = self.params.knowledge
        if self.params.view_impl == "vector":
            self.view: ViewType = VectorView(pid, network.graph, kp, now=self.now)
        else:
            self.view = ProcessView(
                pid, network.graph.n, self.neighbors, kp, now=self.now
            )
        self._heartbeats_sent = 0

    # -- lifecycle -----------------------------------------------------------------

    def on_start(self) -> None:
        kp = self.params.knowledge
        self.set_periodic(kp.delta, "heartbeat", self._heartbeat_round)
        self.set_periodic(kp.tick, "self-tick", self._self_tick)

    # -- knowledge activity ----------------------------------------------------------

    def _heartbeat_round(self) -> None:
        """One ``delta``: Event 2 sweep, then lines 14-17 (emit heartbeats)."""
        self.view.staleness_sweep(self.now)
        snapshot = self.view.emit_heartbeat(self.now)
        message = HeartbeatMessage(snapshot)
        for q in self.neighbors:
            self.send(q, message, category=MessageCategory.HEARTBEAT)
            self._heartbeats_sent += 1

    def _self_tick(self) -> None:
        """Events 3/4 under the step-crash model.

        Each ``delta_tick`` the process checks whether the tick-step was a
        crashed step: an up tick increases its self-reliability belief, a
        crashed one decreases it (the paper's clock-in-stable-storage
        mechanism: a missed interval is a recorded crash).  Burst (Markov)
        crashes are instead accounted on recovery via :meth:`on_recovery`.
        """
        model = self.network.crash_model
        crashed = model.crashed_step(self.pid, self.now)
        if crashed:
            if not model.is_down(self.pid, self.now):
                self.view.record_downtime(1)
            # burst models account the whole outage in on_recovery
        else:
            self.view.record_up_tick()

    def on_recovery(self, down_ticks: int) -> None:
        """Event 4 for burst crashes: ``n`` missed ticks at once."""
        self.view.record_downtime(down_ticks)

    @property
    def heartbeats_sent(self) -> int:
        return self._heartbeats_sent

    # -- broadcast activity ------------------------------------------------------------

    def build_plan(self) -> OptimizeResult:
        """``(mrt_k, ~m)`` from the *current approximation* ``(Lambda_k, C_k)``."""
        tree = self.plan_tree()
        return optimize(tree, self.k_target, self.view)

    def plan_tree(self) -> SpanningTree:
        """The MRT over the currently known topology.

        Spans only the processes reachable through ``Lambda_k`` — early in
        an execution the approximation may cover a fragment of the system;
        as knowledge converges the tree spans everything.
        """
        known = self.view.known_links
        subgraph = self.network.graph.subgraph_links(known)
        reachable = reachable_processes(self.network.graph, known, self.pid)
        return maximum_reliability_tree(
            subgraph, self.view, root=self.pid, restrict_to=reachable
        )

    def plan_signature(self) -> tuple:
        """Hashable fingerprint of the current plan (tree links + counts).

        Re-convergence instrumentation for dynamic-environment scenarios:
        the plan changes while the environment is disturbed (the tree
        shrinks to the reachable fragment, copy counts inflate) and
        settles back once ``(Lambda_k, C_k)`` re-tracks ``(G, C)`` —
        comparing signatures across checkpoints detects both phases
        without holding protocol internals.
        """
        tree = self.plan_tree()
        counts = optimize(tree, self.k_target, self.view).counts
        return (
            tuple(sorted(tuple(link) for link in tree.links())),
            tuple(sorted(counts.items())),
        )

    def broadcast(self, payload: Any) -> MessageId:
        """Algorithm 1 over the approximated knowledge."""
        tree = self.plan_tree()
        result = optimize(tree, self.k_target, self.view)
        mid = self.next_message_id()
        message = DataMessage(
            mid=mid,
            payload=payload,
            tree=tree,
            counts=result.counts,
            k_target=self.k_target,
        )
        self._propagate(message)
        self.deliver(mid, payload)
        return mid

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        if isinstance(payload, HeartbeatMessage):
            self.view.handle_heartbeat(payload.snapshot, self.now)
            return
        if isinstance(payload, PiggybackedData):
            # the snapshot rides along application traffic (Section 4.1);
            # data travels tree links, so the sender is a direct neighbour
            self.view.handle_heartbeat(payload.snapshot, self.now)
            payload = payload.data
        if isinstance(payload, DataMessage):
            if self.has_delivered(payload.mid):
                return
            self._propagate(payload)
            self.deliver(payload.mid, payload.payload)

    def _propagate(self, message: DataMessage) -> None:
        """Forward down the received tree from this process's position."""
        tree = message.tree
        if not tree.contains(self.pid):
            return
        counts = (
            optimize(tree, message.k_target, self.view).counts
            if self.params.recompute_at_receiver
            else message.counts
        )
        outgoing: Any = message
        if self.params.piggyback_knowledge:
            # unsequenced snapshot: a piggybacked copy is not a heartbeat,
            # bumping the sequencer here would make neighbours that only
            # see the periodic heartbeats count phantom losses
            outgoing = PiggybackedData(
                data=message, snapshot=self.view.peek_snapshot(self.now)
            )
        for child in tree.children(self.pid):
            self.send_copies(
                child, outgoing, counts.get(child, 1), category=MessageCategory.DATA
            )
