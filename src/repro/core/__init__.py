"""The paper's primary contribution.

* :mod:`repro.core.tree` / :mod:`repro.core.mrt` — Maximum Reliability
  Tree (Section 3.1, Algorithm 6).
* :mod:`repro.core.reach` — the ``reach`` function (Eq. 1 recursive,
  Eq. 2 iterative).
* :mod:`repro.core.optimize` — the greedy ``optimize()`` (Algorithm 2)
  plus a brute-force reference optimizer used to test its optimality
  (Appendix D).
* :mod:`repro.core.bayesian` — reliability-belief management
  (Algorithm 5, Eq. 4).
* :mod:`repro.core.estimates` — estimates with distortion factors and
  ``selectBestEstimate`` (Algorithm 3).
* :mod:`repro.core.knowledge` / :mod:`repro.core.viewtable` — the
  knowledge-approximation activity (Algorithm 4), in a didactic
  object-based form and a vectorised NumPy form (bit-compatible).
* :mod:`repro.core.broadcast` — shared reliable-broadcast process base.
* :mod:`repro.core.optimal` — the optimal algorithm (Algorithm 1).
* :mod:`repro.core.adaptive` — the adaptive algorithm (Section 4).
"""

from repro.core.adaptive import AdaptiveBroadcast, AdaptiveParameters
from repro.core.bayesian import BeliefEstimator, interval_midpoints
from repro.core.broadcast import DataMessage, ReliableBroadcastProcess
from repro.core.estimates import Estimate, select_best_estimate
from repro.core.knowledge import ProcessView
from repro.core.mrt import maximum_reliability_tree
from repro.core.optimal import OptimalBroadcast
from repro.core.optimize import optimize, optimize_bruteforce
from repro.core.reach import reach, reach_recursive, transmission_lambda
from repro.core.tree import SpanningTree
from repro.core.viewtable import VectorView

__all__ = [
    "SpanningTree",
    "maximum_reliability_tree",
    "reach",
    "reach_recursive",
    "transmission_lambda",
    "optimize",
    "optimize_bruteforce",
    "BeliefEstimator",
    "interval_midpoints",
    "Estimate",
    "select_best_estimate",
    "ProcessView",
    "VectorView",
    "ReliableBroadcastProcess",
    "DataMessage",
    "OptimalBroadcast",
    "AdaptiveBroadcast",
    "AdaptiveParameters",
]
