"""Vectorised knowledge tables — NumPy twin of :class:`ProcessView`.

Algorithm 4's per-heartbeat work touches every process estimate and every
known link estimate; at the paper's scale (100 processes, up to 1000
links, U = 100 intervals) the object implementation spends its time in
Python attribute access.  :class:`VectorView` keeps the whole ``C_k`` as
a handful of NumPy arrays and performs the ``selectBestEstimate`` merge
as masked array assignments.

Behavioural equivalence with :class:`repro.core.knowledge.ProcessView`
is enforced by differential tests driving both implementations through
identical event sequences.

Implementation note: link estimates are stored in a dense table indexed
by the *global* link id of the true topology.  This is a simulation
shortcut only — a ``known`` bitmask gates every read, so a process can
never observe an estimate for a link it has not heard about; the paper's
incremental ``Lambda_k`` discovery semantics are preserved exactly.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.bayesian import interval_midpoints
from repro.core.knowledge import KnowledgeParameters
from repro.errors import ProtocolError
from repro.topology.graph import Graph
from repro.types import Link, ProcessId


class VectorSnapshot:
    """Array-backed heartbeat payload (the ``(Lambda_j, C_j)`` message)."""

    __slots__ = (
        "sender",
        "sender_seq",
        "proc_logb",
        "proc_d",
        "proc_seq",
        "link_logb",
        "link_d",
        "link_known",
    )

    def __init__(
        self,
        sender: ProcessId,
        sender_seq: int,
        proc_logb: np.ndarray,
        proc_d: np.ndarray,
        proc_seq: np.ndarray,
        link_logb: np.ndarray,
        link_d: np.ndarray,
        link_known: np.ndarray,
    ) -> None:
        self.sender = sender
        self.sender_seq = sender_seq
        self.proc_logb = proc_logb
        self.proc_d = proc_d
        self.proc_seq = proc_seq
        self.link_logb = link_logb
        self.link_d = link_d
        self.link_known = link_known


class VectorView:
    """``(Lambda_k, C_k)`` as NumPy tables, same events as ProcessView.

    Args:
        pid: owning process.
        graph: the *true* topology — used only to size the link table and
            map links to dense ids (see the module note); knowledge still
            starts with direct links only.
        params: see :class:`~repro.core.knowledge.KnowledgeParameters`.
        now: initial timestamp for ``last_update`` fields.
    """

    def __init__(
        self,
        pid: ProcessId,
        graph: Graph,
        params: Optional[KnowledgeParameters] = None,
        now: float = 0.0,
    ) -> None:
        if not 0 <= pid < graph.n:
            raise ProtocolError(f"pid {pid} outside graph")
        self.pid = pid
        self.graph = graph
        self.n = graph.n
        self.params = params or KnowledgeParameters()
        self.neighbors: Tuple[ProcessId, ...] = graph.neighbors(pid)
        u = self.params.intervals
        n = graph.n
        m = graph.link_count
        self._midpoints = interval_midpoints(u)
        self._log_mid = np.log(self._midpoints)
        self._log_one_minus_mid = np.log1p(-self._midpoints)

        # beliefs are stored as unnormalised log-posteriors (see
        # repro.core.bayesian.BeliefEstimator for why log space)
        self.proc_logb = np.zeros((n, u))
        self.proc_d = np.full(n, math.inf)
        self.proc_d[pid] = 0.0
        self.proc_seq = np.zeros(n, dtype=np.int64)
        self.proc_suspected = np.zeros(n, dtype=np.int64)
        self.proc_last = np.full(n, float(now))
        self.timeout = np.full(n, self.params.delta)

        self.link_logb = np.zeros((m, u))
        self.link_d = np.full(m, math.inf)
        self.link_known = np.zeros(m, dtype=bool)
        self.link_last = np.full(m, float(now))
        self._incident_rows: Dict[ProcessId, int] = {}
        for q in self.neighbors:
            row = graph.link_id(Link.of(pid, q))
            self.link_known[row] = True
            self.link_d[row] = 0.0
            self._incident_rows[q] = row

    # -- belief row updates (log-space Bayes, underflow-immune) ----------------------

    def _proc_failure(self, row: int, factor: int) -> None:
        b = self.proc_logb[row]
        b += factor * self._log_mid
        b -= b.max()

    def _proc_success(self, row: int, factor: int) -> None:
        b = self.proc_logb[row]
        b += factor * self._log_one_minus_mid
        b -= b.max()

    def _link_failure(self, row: int, factor: int) -> None:
        b = self.link_logb[row]
        b += factor * self._log_mid
        b -= b.max()

    def _link_success(self, row: int, factor: int) -> None:
        b = self.link_logb[row]
        b += factor * self._log_one_minus_mid
        b -= b.max()

    @staticmethod
    def _softmax_rows(logb: np.ndarray) -> np.ndarray:
        shifted = np.exp(logb - logb.max(axis=1, keepdims=True))
        return shifted / shifted.sum(axis=1, keepdims=True)

    # -- ReliabilityView interface ---------------------------------------------------

    @property
    def known_links(self) -> FrozenSet[Link]:
        """``Lambda_k`` as a frozen set of links."""
        return frozenset(
            self.graph.links[i] for i in np.flatnonzero(self.link_known)
        )

    def knows_link(self, link: Link) -> bool:
        return bool(self.link_known[self.graph.link_id(Link.of(*link))])

    def _row_point(self, logb_row: np.ndarray) -> float:
        shifted = np.exp(logb_row - logb_row.max())
        return float((shifted / shifted.sum()) @ self._midpoints)

    def crash_probability(self, p: ProcessId) -> float:
        return self._row_point(self.proc_logb[p])

    def loss_probability(self, link: Link) -> float:
        row = self.graph.link_id(Link.of(*link))
        if not self.link_known[row]:
            raise ProtocolError(f"link {link} not known to process {self.pid}")
        return self._row_point(self.link_logb[row])

    def distortion_of(self, p: ProcessId) -> float:
        return float(self.proc_d[p])

    def link_distortion(self, link: Link) -> float:
        row = self.graph.link_id(Link.of(*link))
        return float(self.link_d[row]) if self.link_known[row] else math.inf

    # -- heartbeat emission -----------------------------------------------------------

    def emit_heartbeat(self, now: float) -> VectorSnapshot:
        """Lines 14-17: bump own seq and snapshot the tables."""
        self.proc_seq[self.pid] += 1
        self.proc_last[self.pid] = now
        return self.peek_snapshot(now)

    def peek_snapshot(self, now: float) -> VectorSnapshot:
        """Snapshot without bumping the sequencer (piggybacking, §4.1)."""
        return VectorSnapshot(
            sender=self.pid,
            sender_seq=int(self.proc_seq[self.pid]),
            proc_logb=self.proc_logb.copy(),
            proc_d=self.proc_d.copy(),
            proc_seq=self.proc_seq.copy(),
            link_logb=self.link_logb.copy(),
            link_d=self.link_d.copy(),
            link_known=self.link_known.copy(),
        )

    # -- Event 1 ---------------------------------------------------------------------

    def handle_heartbeat(self, snapshot: VectorSnapshot, now: float) -> None:
        j = snapshot.sender
        if j not in self._incident_rows:
            raise ProtocolError(
                f"process {self.pid} received a heartbeat from non-neighbour {j}"
            )
        gap = snapshot.sender_seq - int(self.proc_seq[j])
        missed = max(gap - 1, 0)
        adjust = int(self.proc_suspected[j]) - missed
        self.proc_suspected[j] = 0
        lrow = self._incident_rows[j]
        self._link_success(lrow, 1)  # the heartbeat itself arrived
        if adjust > 0:
            self._link_success(lrow, adjust)
            if adjust > 1:
                self.timeout[j] += self.params.delta
        elif adjust < 0:
            self._link_failure(lrow, -adjust)
        self.link_last[lrow] = now

        # process estimate merge (selectBestEstimate, vectorised)
        mask = snapshot.proc_d < self.proc_d
        mask[self.pid] = False
        if mask.any():
            self.proc_logb[mask] = snapshot.proc_logb[mask]
            self.proc_d[mask] = snapshot.proc_d[mask] + 1.0
            self.proc_seq[mask] = snapshot.proc_seq[mask]
            self.proc_last[mask] = now

        # link estimate merge for common links
        common = self.link_known & snapshot.link_known
        lmask = common & (snapshot.link_d < self.link_d)
        if lmask.any():
            self.link_logb[lmask] = snapshot.link_logb[lmask]
            self.link_d[lmask] = snapshot.link_d[lmask] + 1.0
            self.link_last[lmask] = now

        # newly learned links: adopt wholesale, distortion + 1
        new = snapshot.link_known & ~self.link_known
        if new.any():
            self.link_logb[new] = snapshot.link_logb[new]
            self.link_d[new] = snapshot.link_d[new] + 1.0
            self.link_last[new] = now
            self.link_known |= new

    # -- Event 2 ---------------------------------------------------------------------

    def staleness_sweep(self, now: float) -> List[ProcessId]:
        stale = (now - self.proc_last) >= self.timeout
        stale[self.pid] = False
        suspected: List[ProcessId] = []
        if stale.any():
            self.proc_d[stale] += 1.0
            self.proc_last[stale] = now
            for q in self.neighbors:
                if stale[q]:
                    self.proc_suspected[q] += 1
                    self._proc_failure(q, 1)
                    self._link_failure(self._incident_rows[q], 1)
                    suspected.append(q)
        return suspected

    # -- Events 3/4 ------------------------------------------------------------------

    def record_up_tick(self) -> None:
        self._proc_success(self.pid, 1)

    def record_downtime(self, ticks: int) -> None:
        if ticks < 0:
            raise ProtocolError(f"negative downtime {ticks}")
        if ticks:
            self._proc_failure(self.pid, ticks)

    # -- diagnostics -----------------------------------------------------------------

    def proc_map_interval(self, p: ProcessId) -> int:
        return int(np.argmax(self.proc_logb[p]))

    def link_map_interval(self, link: Link) -> int:
        row = self.graph.link_id(Link.of(*link))
        if not self.link_known[row]:
            raise ProtocolError(f"link {link} not known to process {self.pid}")
        return int(np.argmax(self.link_logb[row]))

    def proc_point_estimates(self) -> np.ndarray:
        """Posterior-mean crash probability of every process (vector)."""
        return self._softmax_rows(self.proc_logb) @ self._midpoints

    def link_point_estimates(self) -> np.ndarray:
        """Posterior-mean loss of every *known* link (NaN where unknown)."""
        out = self._softmax_rows(self.link_logb) @ self._midpoints
        out[~self.link_known] = np.nan
        return out

    def proc_map_intervals(self) -> np.ndarray:
        """MAP interval index per process (vector form for convergence checks)."""
        return np.argmax(self.proc_logb, axis=1)

    def link_map_intervals(self) -> np.ndarray:
        """MAP interval per link; -1 where unknown."""
        out = np.argmax(self.link_logb, axis=1).astype(np.int64)
        out[~self.link_known] = -1
        return out

    def all_links_known(self) -> bool:
        return bool(self.link_known.all())

    def __repr__(self) -> str:  # pragma: no cover - debug sugar
        return (
            f"VectorView(pid={self.pid}, known_links="
            f"{int(self.link_known.sum())}/{self.graph.link_count})"
        )
