"""The knowledge-approximation activity (Algorithm 4) — object form.

Each process ``p_k`` maintains an approximated topology ``Lambda_k`` and
configuration ``C_k`` and reacts to the paper's four events:

* **Event 1** — reception of ``(Lambda_j, C_j)`` from a neighbour
  (lines 18-33): reconcile suspicions with the heartbeat sequence gap,
  update the incoming link's beliefs, merge estimates via
  ``selectBestEstimate`` and merge topology knowledge.
* **Event 2** — staleness sweep (lines 34-39): estimates not refreshed
  within their timeout get their distortion incremented; silent
  *neighbours* are additionally suspected, and both the neighbour and the
  link to it take a failure observation.
* **Event 3** — an uneventful tick increases the process's belief in its
  own reliability (lines 40-41).
* **Event 4** — recovering from a crash of ``n`` ticks decreases it by
  ``n`` (lines 42-43).

Interpretation decisions (documented in DESIGN.md §3): the seq gap counts
the arriving heartbeat itself, so ``missed = gap - 1`` heartbeats were
lost and ``adjust = suspected - missed``; and every *received* heartbeat
records one success observation on the incoming link — otherwise link
beliefs could only ever decrease and would never converge to the true
loss probability (they would all drift to the ``[0.99, 1.0]`` interval,
contradicting Figure 5).

This object implementation is the readable reference; the NumPy
:class:`repro.core.viewtable.VectorView` is behaviourally identical
(differential-tested) and is what large simulations use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.bayesian import DEFAULT_INTERVALS
from repro.core.estimates import UNKNOWN_DISTORTION, Estimate, select_best_estimate
from repro.errors import ProtocolError
from repro.types import Link, ProcessId
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class KnowledgeParameters:
    """Tunables of the approximation activity.

    Attributes:
        delta: heartbeat period (the paper's ``delta``; also the initial
            per-neighbour suspicion timeout, Algorithm 4 line 7).
        intervals: Bayesian interval count ``U`` (paper: 100).
        tick: the ``delta_tick`` of Events 3/4 (self-reliability ticks).
    """

    delta: float = 1.0
    intervals: int = DEFAULT_INTERVALS
    tick: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.delta, "delta")
        check_positive_int(self.intervals, "intervals")
        check_positive(self.tick, "tick")


@dataclass(frozen=True)
class HeartbeatSnapshot:
    """The ``(Lambda_k, C_k)`` payload a process sends its neighbours.

    Estimates are deep-copied at emission time so receivers observe the
    sender's state at the moment of sending, regardless of what the
    sender does while the message is in flight.
    """

    sender: ProcessId
    sender_seq: int
    proc_estimates: Dict[ProcessId, Estimate]
    link_estimates: Dict[Link, Estimate]

    @property
    def links(self) -> FrozenSet[Link]:
        """``Lambda_j`` — the sender's known topology."""
        return frozenset(self.link_estimates)


class ProcessView:
    """``(Lambda_k, C_k)`` at one process, with the Event 1-4 handlers.

    Args:
        pid: the owning process ``p_k``.
        n: total number of processes (the paper assumes ``Pi`` is known
           from the start; see Section 4.2).
        neighbors: ``p_k``'s direct neighbours.
        params: see :class:`KnowledgeParameters`.
        now: current time, used to initialise ``last_update`` fields.
    """

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        neighbors: Iterable[ProcessId],
        params: Optional[KnowledgeParameters] = None,
        now: float = 0.0,
    ) -> None:
        check_positive_int(n, "n")
        if not 0 <= pid < n:
            raise ProtocolError(f"pid {pid} outside 0..{n - 1}")
        self.pid = pid
        self.n = n
        self.params = params or KnowledgeParameters()
        self.neighbors: Tuple[ProcessId, ...] = tuple(sorted(set(neighbors)))
        if pid in self.neighbors:
            raise ProtocolError(f"process {pid} cannot neighbour itself")
        u = self.params.intervals
        # Algorithm 4, lines 2-8: process estimates
        self.proc: Dict[ProcessId, Estimate] = {
            p: Estimate.fresh(u, UNKNOWN_DISTORTION, now) for p in range(n)
        }
        self.proc[pid].distortion = 0.0  # p_k sees itself with no distortion
        self.timeout: Dict[ProcessId, float] = {
            p: self.params.delta for p in range(n)
        }
        # lines 9-12: direct links only, distortion 0
        self.link: Dict[Link, Estimate] = {}
        for q in self.neighbors:
            self.link[Link.of(pid, q)] = Estimate.fresh(u, 0.0, now)

    # -- topology / reliability queries (ReliabilityView interface) ---------------

    @property
    def known_links(self) -> FrozenSet[Link]:
        """``Lambda_k`` — all links this process has heard of."""
        return frozenset(self.link)

    def knows_link(self, link: Link) -> bool:
        return Link.of(*link) in self.link

    def crash_probability(self, p: ProcessId) -> float:
        """Estimated ``P_p`` (posterior mean; 0.5 when entirely unknown)."""
        return self.proc[p].point_estimate()

    def loss_probability(self, link: Link) -> float:
        """Estimated ``L`` of a known link.

        Raises:
            ProtocolError: if the link is not in ``Lambda_k``.
        """
        link = Link.of(*link)
        est = self.link.get(link)
        if est is None:
            raise ProtocolError(f"link {link} not known to process {self.pid}")
        return est.point_estimate()

    def distortion_of(self, p: ProcessId) -> float:
        return self.proc[p].distortion

    def link_distortion(self, link: Link) -> float:
        link = Link.of(*link)
        est = self.link.get(link)
        return UNKNOWN_DISTORTION if est is None else est.distortion

    # -- heartbeat emission (Algorithm 4 lines 14-17) ------------------------------

    def emit_heartbeat(self, now: float) -> HeartbeatSnapshot:
        """Increment the heartbeat sequencer and snapshot ``(Lambda, C)``.

        The caller (the protocol process) sends the returned snapshot to
        every neighbour.
        """
        own = self.proc[self.pid]
        own.seq += 1
        own.last_update = now
        return self.peek_snapshot(now)

    def peek_snapshot(self, now: float) -> HeartbeatSnapshot:
        """Snapshot ``(Lambda, C)`` *without* bumping the sequencer.

        Used for opportunistic piggybacking on application messages
        (Section 4.1): the copy carries current knowledge but is not a
        sequenced heartbeat, so receivers must not count the sequence
        gap arithmetic against the link.
        """
        own = self.proc[self.pid]
        return HeartbeatSnapshot(
            sender=self.pid,
            sender_seq=own.seq,
            proc_estimates={p: est.copy() for p, est in self.proc.items()},
            link_estimates={l: est.copy() for l, est in self.link.items()},
        )

    # -- Event 1 (lines 18-33) ------------------------------------------------------

    def handle_heartbeat(self, snapshot: HeartbeatSnapshot, now: float) -> None:
        """Process a received ``(Lambda_j, C_j)`` from a neighbour."""
        j = snapshot.sender
        if j not in self.neighbors:
            raise ProtocolError(
                f"process {self.pid} received a heartbeat from non-neighbour {j}"
            )
        mine_j = self.proc[j]
        gap = snapshot.sender_seq - mine_j.seq
        missed = max(gap - 1, 0)
        adjust = mine_j.suspected - missed
        mine_j.suspected = 0
        incoming = self.link[Link.of(self.pid, j)]
        # the received heartbeat itself is a success observation on l_kj
        incoming.beliefs.increase_reliability(1)
        if adjust > 0:
            # the link was suspected too much: undo the spurious failures
            incoming.beliefs.increase_reliability(adjust)
            if adjust > 1:
                self.timeout[j] += self.params.delta
        elif adjust < 0:
            # more heartbeats were lost than suspicions recorded
            incoming.beliefs.decrease_reliability(-adjust)
        incoming.last_update = now

        # lines 26-27: adopt the less distorted process estimates.  The
        # sender's self-estimate has distortion 0, so it is always adopted
        # (which also refreshes seq and last_update for the sender).
        for p, theirs in snapshot.proc_estimates.items():
            if p == self.pid:
                continue  # nobody knows p_k better than p_k itself
            select_best_estimate(self.proc[p], theirs, now)

        # lines 28-33: link estimates and topology merge
        for l, theirs in snapshot.link_estimates.items():
            mine = self.link.get(l)
            if mine is not None:
                select_best_estimate(mine, theirs, now)
            else:
                adopted = theirs.copy()
                adopted.distortion += 1.0
                adopted.last_update = now
                self.link[l] = adopted

    # -- Event 2 (lines 34-39) ------------------------------------------------------

    def staleness_sweep(self, now: float) -> List[ProcessId]:
        """Fire Event 2 for every estimate stale past its timeout.

        Returns:
            Neighbours that were (newly) suspected by this sweep.
        """
        suspected: List[ProcessId] = []
        for p, est in self.proc.items():
            if p == self.pid:
                continue
            if now - est.last_update < self.timeout[p]:
                continue
            est.distortion += 1.0  # knowledge gets distorted with time
            est.last_update = now  # the timeout restarts
            if p in self.neighbors:
                est.suspected += 1
                est.beliefs.decrease_reliability(1)
                self.link[Link.of(self.pid, p)].beliefs.decrease_reliability(1)
                suspected.append(p)
        return suspected

    # -- Events 3 and 4 (lines 40-43) -------------------------------------------------

    def record_up_tick(self) -> None:
        """Event 3: one uneventful ``delta_tick`` — trust self a bit more."""
        self.proc[self.pid].beliefs.increase_reliability(1)

    def record_downtime(self, ticks: int) -> None:
        """Event 4: recovered after ``ticks`` crashed ticks."""
        if ticks < 0:
            raise ProtocolError(f"negative downtime {ticks}")
        if ticks:
            self.proc[self.pid].beliefs.decrease_reliability(ticks)

    # -- diagnostics ---------------------------------------------------------------

    def proc_map_interval(self, p: ProcessId) -> int:
        return self.proc[p].beliefs.map_interval()

    def link_map_interval(self, link: Link) -> int:
        link = Link.of(*link)
        est = self.link.get(link)
        if est is None:
            raise ProtocolError(f"link {link} not known to process {self.pid}")
        return est.beliefs.map_interval()

    def summary(self) -> Dict[str, float]:
        known = len(self.link)
        finite = [e.distortion for e in self.proc.values()
                  if not math.isinf(e.distortion)]
        return {
            "pid": float(self.pid),
            "known_links": float(known),
            "known_processes": float(len(finite)),
            "mean_distortion": (sum(finite) / len(finite)) if finite else math.inf,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug sugar
        return (
            f"ProcessView(pid={self.pid}, links={len(self.link)}/"
            f"known, n={self.n})"
        )
