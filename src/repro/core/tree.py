"""Rooted spanning trees — the substrate of the MRT and ``reach``.

Section 3.2 relabels the MRT from a sender ``p_s``: each non-root process
``p_j`` is reached through exactly one link ``l_j`` from its predecessor
``pred(j)``, and the optimisation assigns a message count ``m_j`` to that
link.  :class:`SpanningTree` captures this rooted view: parent/children
pointers plus the ``lambda_j`` computation from a reliability view.

A *reliability view* is anything exposing ``crash_probability(p)`` and
``loss_probability(link)`` — the true :class:`~repro.topology.configuration.
Configuration` for the optimal algorithm, or a process's approximated view
for the adaptive one.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import TreeError
from repro.types import Link, ProcessId

try:  # Protocol is typing-only; keep runtime dependency-free on 3.9
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


class ReliabilityView(Protocol):
    """Anything that can price processes and links (true or estimated)."""

    def crash_probability(self, p: ProcessId) -> float:  # pragma: no cover
        ...

    def loss_probability(self, link: Link) -> float:  # pragma: no cover
        ...


class SpanningTree:
    """A tree rooted at a sender, over a subset of processes.

    Args:
        root: the sender ``p_s``.
        parent: mapping ``child -> parent`` for every non-root node.

    The node set is ``{root} ∪ parent.keys()``; every parent must itself
    be a node.  The MRT of a fully known system spans all processes; the
    adaptive protocol may build partial trees while its topology knowledge
    is still incomplete.
    """

    __slots__ = ("_root", "_parent", "_children", "_order")

    def __init__(self, root: ProcessId, parent: Mapping[ProcessId, ProcessId]) -> None:
        if root in parent:
            raise TreeError(f"root {root} cannot have a parent")
        nodes = set(parent) | {root}
        children: Dict[ProcessId, List[ProcessId]] = {p: [] for p in sorted(nodes)}
        for child, par in parent.items():
            if par not in nodes:
                raise TreeError(f"parent {par} of {child} is not a tree node")
            if child == par:
                raise TreeError(f"node {child} is its own parent")
            children[par].append(child)
        for kids in children.values():
            kids.sort()
        # verify connectivity/acyclicity by walking from the root
        seen = {root}
        stack = [root]
        while stack:
            p = stack.pop()
            for c in children[p]:
                if c in seen:
                    raise TreeError(f"cycle detected at node {c}")
                seen.add(c)
                stack.append(c)
        if seen != nodes:
            raise TreeError(
                f"{len(nodes) - len(seen)} node(s) unreachable from root {root}"
            )
        self._root = root
        self._parent: Dict[ProcessId, ProcessId] = dict(parent)
        self._children: Dict[ProcessId, Tuple[ProcessId, ...]] = {
            p: tuple(kids) for p, kids in children.items()
        }
        # breadth-first order (root first): deterministic iteration order
        order: List[ProcessId] = [root]
        idx = 0
        while idx < len(order):
            order.extend(self._children[order[idx]])
            idx += 1
        self._order = tuple(order)

    # -- structure ---------------------------------------------------------------

    @property
    def root(self) -> ProcessId:
        return self._root

    @property
    def size(self) -> int:
        """Number of nodes (links = size - 1)."""
        return len(self._order)

    @property
    def nodes(self) -> Tuple[ProcessId, ...]:
        """Nodes in breadth-first order (root first)."""
        return self._order

    @property
    def non_root_nodes(self) -> Tuple[ProcessId, ...]:
        """The relabelled ``p_1 .. p_{n-1}`` of Section 3.2 (BFS order)."""
        return self._order[1:]

    def parent(self, p: ProcessId) -> ProcessId:
        """``pred(p)`` — the predecessor of ``p`` in the tree.

        Raises:
            TreeError: for the root or unknown nodes.
        """
        if p == self._root:
            raise TreeError("the root has no parent")
        try:
            return self._parent[p]
        except KeyError:
            raise TreeError(f"node {p} not in tree") from None

    def children(self, p: ProcessId) -> Tuple[ProcessId, ...]:
        """Direct subtree roots below ``p`` (the ``S_p`` of Section 3.2)."""
        try:
            return self._children[p]
        except KeyError:
            raise TreeError(f"node {p} not in tree") from None

    def contains(self, p: ProcessId) -> bool:
        return p in self._children

    def link_to(self, p: ProcessId) -> Link:
        """``l_p`` — the link through which ``p`` is reached."""
        return Link.of(self.parent(p), p)

    def links(self) -> List[Link]:
        """All tree links (one per non-root node, BFS order)."""
        return [self.link_to(p) for p in self.non_root_nodes]

    def subtree_nodes(self, p: ProcessId) -> List[ProcessId]:
        """All nodes of ``T_p`` (the subtree rooted at ``p``), BFS order."""
        if not self.contains(p):
            raise TreeError(f"node {p} not in tree")
        out = [p]
        idx = 0
        while idx < len(out):
            out.extend(self._children[out[idx]])
            idx += 1
        return out

    def depth(self, p: ProcessId) -> int:
        """Hop distance from the root."""
        if not self.contains(p):
            raise TreeError(f"node {p} not in tree")
        d = 0
        while p != self._root:
            p = self._parent[p]
            d += 1
        return d

    def leaves(self) -> List[ProcessId]:
        return [p for p in self._order if not self._children[p]]

    # -- reliability labelling ----------------------------------------------------

    def lambdas(self, view: ReliabilityView) -> Dict[ProcessId, float]:
        """Per-node transmission failure probabilities.

        ``lambda_j = 1 - (1-P_pred(j)) (1-L_j) (1-P_j)`` — the probability
        that one message sent towards ``p_j`` over ``l_j`` does *not*
        arrive (Eq. 3).  Keyed by the non-root node ``j``.
        """
        out: Dict[ProcessId, float] = {}
        for j in self.non_root_nodes:
            pred = self._parent[j]
            out[j] = 1.0 - (
                (1.0 - view.crash_probability(pred))
                * (1.0 - view.loss_probability(Link.of(pred, j)))
                * (1.0 - view.crash_probability(j))
            )
        return out

    # -- dunder -------------------------------------------------------------------

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(self._order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpanningTree):
            return NotImplemented
        return self._root == other._root and self._parent == other._parent

    def __hash__(self) -> int:
        return hash((self._root, tuple(sorted(self._parent.items()))))

    def __repr__(self) -> str:
        return f"SpanningTree(root={self._root}, size={self.size})"

    # -- construction helpers -------------------------------------------------------

    @classmethod
    def from_links(
        cls, root: ProcessId, links: Sequence[Link]
    ) -> "SpanningTree":
        """Orient an unrooted link set into a tree rooted at ``root``.

        Raises:
            TreeError: if the links do not form a tree containing ``root``.
        """
        adjacency: Dict[ProcessId, List[ProcessId]] = {}
        for link in links:
            adjacency.setdefault(link.u, []).append(link.v)
            adjacency.setdefault(link.v, []).append(link.u)
        if root not in adjacency and links:
            raise TreeError(f"root {root} is not an endpoint of any link")
        parent: Dict[ProcessId, ProcessId] = {}
        seen = {root}
        stack = [root]
        while stack:
            p = stack.pop()
            for q in adjacency.get(p, ()):
                if q in seen:
                    continue
                seen.add(q)
                parent[q] = p
                stack.append(q)
        if len(parent) != len(links):
            raise TreeError(
                f"{len(links)} links but only {len(parent)} reachable "
                "non-root nodes: not a tree on the root's component"
            )
        return cls(root, parent)

    def reroot(self, new_root: ProcessId) -> "SpanningTree":
        """The same undirected tree, rooted elsewhere."""
        return SpanningTree.from_links(new_root, self.links())
