"""Maximum Reliability Tree (Section 3.1, Algorithm 6, Appendix B).

The MRT is the spanning tree whose links maximise the per-hop success
probability ``w(u,v) = (1-P_u)(1-L_uv)(1-P_v)``; equivalently (Appendix C)
it is the *maximum spanning tree* of the graph weighted by ``w``.  It is
computed with a modified Prim's algorithm, exactly as the paper's
Algorithm 6 but with an addressable heap for O(m log n) instead of the
naive O(n·m) scan, and with deterministic tie-breaking so that processes
agreeing on ``(G, C)`` build the *same* tree (a requirement stated in
Section 3.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.errors import DisconnectedGraphError, UnknownProcessError
from repro.core.tree import ReliabilityView, SpanningTree
from repro.topology.graph import Graph
from repro.types import Link, ProcessId
from repro.util.heap import AddressableHeap


def link_weight(view: ReliabilityView, link: Link) -> float:
    """``(1-P_u)(1-L_uv)(1-P_v)`` — Algorithm 6, line 6."""
    return (
        (1.0 - view.crash_probability(link.u))
        * (1.0 - view.loss_probability(link))
        * (1.0 - view.crash_probability(link.v))
    )


def maximum_reliability_tree(
    graph: Graph,
    view: ReliabilityView,
    root: ProcessId = 0,
    restrict_to: Optional[Iterable[ProcessId]] = None,
) -> SpanningTree:
    """Build the MRT of ``graph`` under ``view``, rooted at ``root``.

    Args:
        graph: the (known) topology ``(Pi, Lambda)``.
        view: reliability provider — the true configuration for the
            optimal algorithm, a process's approximation for the adaptive
            one.
        root: the sender ``p_s`` (Algorithm 1 builds ``mrt_k`` at the
            broadcasting process ``p_k``).
        restrict_to: optionally limit the tree to a subset of processes
            (the adaptive protocol spans only processes it knows paths to).

    Returns:
        The rooted MRT.  Ties between equally reliable candidate links are
        broken deterministically (lowest candidate process id, then lowest
        attaching-endpoint id), so all processes with identical knowledge
        derive identical trees.

    Raises:
        DisconnectedGraphError: if some requested process is unreachable.
        UnknownProcessError: if ``root`` is not a graph process.
    """
    if not 0 <= root < graph.n:
        raise UnknownProcessError(f"root {root} not in graph")
    targets: Set[ProcessId] = (
        set(restrict_to) if restrict_to is not None else set(graph.processes)
    )
    targets.add(root)

    parent: Dict[ProcessId, ProcessId] = {}
    in_tree: Set[ProcessId] = {root}
    # frontier: candidate node -> (priority tuple), best attaching edge
    # priority = (-weight, candidate, attach): max weight first, then ids.
    best_attach: Dict[ProcessId, ProcessId] = {}
    heap: AddressableHeap[ProcessId] = AddressableHeap()

    def relax(u: ProcessId) -> None:
        """Offer edges from newly added tree node ``u`` to the frontier."""
        for v in graph.neighbors(u):
            if v in in_tree:
                continue
            w = link_weight(view, Link.of(u, v))
            priority = (-w, v, u)
            if v in heap:
                if priority < heap.priority(v):  # type: ignore[operator]
                    heap.update(v, priority)  # type: ignore[arg-type]
                    best_attach[v] = u
            else:
                heap.push(v, priority)  # type: ignore[arg-type]
                best_attach[v] = u

    relax(root)
    while heap:
        v, _ = heap.pop()
        u = best_attach[v]
        in_tree.add(v)
        parent[v] = u
        relax(v)

    missing = targets - in_tree
    if missing:
        raise DisconnectedGraphError(
            f"{len(missing)} process(es) unreachable from root {root}: "
            f"{sorted(missing)[:10]}"
        )
    if restrict_to is not None:
        # prune branches that contain no requested process
        tree = SpanningTree(root, parent)
        keep: Set[ProcessId] = set()
        for t in targets:
            node = t
            while node not in keep:
                keep.add(node)
                if node == root:
                    break
                node = tree.parent(node)
        parent = {c: p for c, p in parent.items() if c in keep}
    return SpanningTree(root, parent)


def mrt_weight_product(tree: SpanningTree, view: ReliabilityView) -> float:
    """Product of link weights over the tree (for maximality cross-checks)."""
    prod = 1.0
    for j in tree.non_root_nodes:
        prod *= link_weight(view, tree.link_to(j))
    return prod


def reachable_processes(
    graph: Graph, links: Iterable[Link], start: ProcessId
) -> Set[ProcessId]:
    """Processes reachable from ``start`` using only the given links.

    Helper for the adaptive protocol: its known topology ``Lambda_k`` may
    cover only part of the system, and the MRT must span exactly the
    reachable component.
    """
    adjacency: Dict[ProcessId, list] = {}
    for link in links:
        adjacency.setdefault(link.u, []).append(link.v)
        adjacency.setdefault(link.v, []).append(link.u)
    seen = {start}
    stack = [start]
    while stack:
        p = stack.pop()
        for q in adjacency.get(p, ()):
            if q not in seen:
                seen.add(q)
                stack.append(q)
    return seen
