"""Dynamic belief-resolution refinement (Section 7, future work).

The paper proposes to *"improve our statistical inference mechanism, for
example by dynamically increasing the number of probabilistic intervals
when better precision is required"*.  This module implements that idea:

:class:`AdaptiveResolutionEstimator` starts from a coarse partition of
``[0, 1]`` and, whenever the posterior concentrates on one interval
(its belief mass exceeds ``refine_threshold``), splits that interval in
half — spending resolution only where the true probability lives.  A
16-interval budget refined adaptively reaches the precision of a uniform
U=100 estimator around small probabilities at a fraction of the state.

The estimator keeps the same observation API as
:class:`repro.core.bayesian.BeliefEstimator` (``increase_reliability`` /
``decrease_reliability``) so it can be compared head-to-head; the
fixed-resolution estimator remains the protocol default (Algorithm 5).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.util.validation import check_non_negative_int, check_positive_int


class AdaptiveResolutionEstimator:
    """Bayesian failure-probability estimator with adaptive resolution.

    Args:
        initial_intervals: size of the starting uniform partition.
        max_intervals: hard cap on the partition size.
        refine_threshold: belief mass at which the MAP interval splits.
        min_width: intervals narrower than this never split.

    Observations accumulated *before* a split are preserved exactly: the
    split divides an interval's posterior mass between its halves in
    proportion to each half's likelihood under the recorded success /
    failure counts (the within-interval posterior shape), rather than
    assuming a uniform spread.
    """

    def __init__(
        self,
        initial_intervals: int = 8,
        max_intervals: int = 256,
        refine_threshold: float = 0.5,
        min_width: float = 1e-4,
    ) -> None:
        check_positive_int(initial_intervals, "initial_intervals")
        check_positive_int(max_intervals, "max_intervals")
        if max_intervals < initial_intervals:
            raise ValidationError("max_intervals must be >= initial_intervals")
        if not 0.0 < refine_threshold < 1.0:
            raise ValidationError(
                f"refine_threshold must be in (0,1), got {refine_threshold}"
            )
        if min_width <= 0:
            raise ValidationError(f"min_width must be positive, got {min_width}")
        self._edges = np.linspace(0.0, 1.0, initial_intervals + 1)
        self._log_beliefs = np.zeros(initial_intervals)
        self._max_intervals = max_intervals
        self._refine_threshold = refine_threshold
        self._min_width = min_width
        self._successes = 0
        self._failures = 0

    # -- queries -----------------------------------------------------------------

    @property
    def intervals(self) -> int:
        return len(self._log_beliefs)

    @property
    def edges(self) -> np.ndarray:
        """Interval boundaries (sorted, first 0.0, last 1.0)."""
        return self._edges.copy()

    @property
    def observations(self) -> Tuple[int, int]:
        """``(successes, failures)`` recorded so far."""
        return self._successes, self._failures

    def _midpoints(self) -> np.ndarray:
        return 0.5 * (self._edges[:-1] + self._edges[1:])

    @property
    def beliefs(self) -> np.ndarray:
        shifted = np.exp(self._log_beliefs - self._log_beliefs.max())
        return shifted / shifted.sum()

    def point_estimate(self) -> float:
        return float(self.beliefs @ self._midpoints())

    def map_interval(self) -> int:
        return int(np.argmax(self._log_beliefs))

    def map_bounds(self) -> Tuple[float, float]:
        u = self.map_interval()
        return float(self._edges[u]), float(self._edges[u + 1])

    def resolution_at_map(self) -> float:
        """Width of the currently most-believed interval."""
        lo, hi = self.map_bounds()
        return hi - lo

    # -- observations ---------------------------------------------------------------

    def decrease_reliability(self, factor: int = 1) -> None:
        """Record ``factor`` failure observations, then maybe refine."""
        check_non_negative_int(factor, "factor")
        if factor:
            self._failures += factor
            with np.errstate(divide="ignore"):
                self._log_beliefs += factor * np.log(self._midpoints())
            self._log_beliefs -= self._log_beliefs.max()
            self._maybe_refine()

    def increase_reliability(self, factor: int = 1) -> None:
        """Record ``factor`` success observations, then maybe refine."""
        check_non_negative_int(factor, "factor")
        if factor:
            self._successes += factor
            self._log_beliefs += factor * np.log1p(-self._midpoints())
            self._log_beliefs -= self._log_beliefs.max()
            self._maybe_refine()

    def observe(self, successes: int, failures: int) -> None:
        self.increase_reliability(successes)
        self.decrease_reliability(failures)

    # -- refinement -------------------------------------------------------------------

    def _log_likelihood(self, p: np.ndarray) -> np.ndarray:
        """Log-likelihood of the recorded observations at probability p."""
        with np.errstate(divide="ignore", invalid="ignore"):
            ll = self._failures * np.log(p) + self._successes * np.log1p(-p)
        return np.where(np.isnan(ll), -np.inf, ll)

    def _maybe_refine(self) -> None:
        while len(self._log_beliefs) < self._max_intervals:
            beliefs = self.beliefs
            u = int(np.argmax(beliefs))
            if beliefs[u] < self._refine_threshold:
                return
            lo, hi = float(self._edges[u]), float(self._edges[u + 1])
            if hi - lo <= self._min_width:
                return
            mid = 0.5 * (lo + hi)
            left_rep = 0.5 * (lo + mid)
            right_rep = 0.5 * (mid + hi)
            # split the interval's mass by the halves' relative likelihood
            ll = self._log_likelihood(np.array([left_rep, right_rep]))
            peak = ll.max()
            if peak == -np.inf:
                log_weights = np.log(np.array([0.5, 0.5]))
            else:
                w = np.exp(ll - peak)
                with np.errstate(divide="ignore"):
                    log_weights = np.log(w / w.sum())
            # stay in log space: round-tripping through the normalised
            # linear beliefs would clamp hopeless intervals at the float
            # floor and erase the evidence against them
            new_logs = self._log_beliefs[u] + log_weights
            self._log_beliefs = np.concatenate(
                [self._log_beliefs[:u], new_logs, self._log_beliefs[u + 1 :]]
            )
            self._edges = np.concatenate(
                [self._edges[: u + 1], [mid], self._edges[u + 1 :]]
            )
            self._log_beliefs -= self._log_beliefs.max()

    # -- diagnostics ---------------------------------------------------------------

    def partition(self) -> List[Tuple[float, float, float]]:
        """``(lo, hi, belief)`` triples of the current partition."""
        beliefs = self.beliefs
        return [
            (float(self._edges[i]), float(self._edges[i + 1]), float(beliefs[i]))
            for i in range(len(beliefs))
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug sugar
        lo, hi = self.map_bounds()
        return (
            f"AdaptiveResolutionEstimator(U={self.intervals}, "
            f"map=[{lo:.4f},{hi:.4f}), estimate={self.point_estimate():.4f})"
        )
