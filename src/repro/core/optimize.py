"""The greedy ``optimize()`` function (Section 3.3, Algorithm 2).

Starting from the minimal vector ``m = (1,...,1)``, the algorithm
repeatedly increments the component whose extra copy maximises the
multiplicative gain

    gain_j(m_j) = (1 - lambda_j^(m_j+1)) / (1 - lambda_j^(m_j))

until ``reach(m) >= K``.  Appendix D proves the greedy choice is optimal
because the gain is isotonic (non-increasing in ``m_j``); this
implementation exploits exactly that property to replace the paper's
argmax scan with a max-heap — the result is identical (ties broken by
node id for determinism) at O(total increments · log n).

A brute-force optimizer over small trees is included as the test oracle
for the optimality theorem.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import UnreachableTargetError, ValidationError
from repro.core.reach import reach
from repro.core.tree import ReliabilityView, SpanningTree
from repro.types import ProcessId
from repro.util.heap import AddressableHeap
from repro.util.validation import check_open_probability


@dataclass(frozen=True)
class OptimizeResult:
    """Outcome of :func:`optimize`.

    Attributes:
        counts: ``m_j`` per non-root tree node (the vector ``~m``).
        achieved: the reach probability of ``counts`` (>= requested ``K``).
        total_messages: ``c(m) = sum(m_j)`` — the optimisation objective.
        increments: greedy steps taken beyond the minimal vector.
    """

    counts: Dict[ProcessId, int]
    achieved: float
    total_messages: int
    increments: int


def gain(lam: float, m: int) -> float:
    """``gain_j`` of Eq. 6: reach multiplier for one extra copy on a link."""
    if lam <= 0.0:
        return 1.0
    numerator = 1.0 - lam ** (m + 1)
    denominator = 1.0 - lam ** m
    if denominator <= 0.0:
        return math.inf  # first useful copy on an m=0 link
    return numerator / denominator


def optimize(
    tree: SpanningTree,
    k_target: float,
    view: ReliabilityView,
    max_total: Optional[int] = None,
) -> OptimizeResult:
    """Minimise total messages subject to ``reach >= k_target`` (Eq. 3).

    Args:
        tree: the MRT (or any rooted spanning tree).
        k_target: required probability ``K`` in (0, 1).
        view: reliability provider for ``lambda_j``.
        max_total: safety cap on ``sum(m_j)``; defaults to
            ``max(10_000, 1_000 * links)``.

    Returns:
        An :class:`OptimizeResult`; ``counts`` is the paper's ``~m``.

    Raises:
        UnreachableTargetError: if some ``lambda_j = 1`` (that node can
            never be reached) or the cap is hit before ``K``.
    """
    check_open_probability(k_target, "k_target")
    nodes = tree.non_root_nodes
    if not nodes:  # single-node tree: the sender itself always delivers
        return OptimizeResult(counts={}, achieved=1.0, total_messages=0, increments=0)

    lambdas = tree.lambdas(view)
    for j, lam in lambdas.items():
        if lam >= 1.0:
            raise UnreachableTargetError(
                f"node {j} is unreachable (lambda = {lam}); "
                "no retransmission count can meet the target"
            )
        if lam < 0.0:
            raise ValidationError(f"negative lambda {lam} at node {j}")

    cap = max_total if max_total is not None else max(10_000, 1_000 * len(nodes))
    counts: Dict[ProcessId, int] = {j: 1 for j in nodes}
    log_r = 0.0
    for j in nodes:
        log_r += math.log(1.0 - lambdas[j])
    log_k = math.log(k_target)

    # Max-gain heap: priority (-gain, node) pops the largest gain, ties by id.
    heap: AddressableHeap[ProcessId] = AddressableHeap()
    for j in nodes:
        g = gain(lambdas[j], 1)
        if g > 1.0:
            heap.push(j, (-g, j))  # type: ignore[arg-type]

    total = len(nodes)
    increments = 0
    while log_r < log_k:
        if not heap:
            # every gain collapsed to 1.0 in floating point: reach is as
            # high as representable; accept if within tolerance else fail.
            if log_r >= log_k - 1e-12:
                break
            raise UnreachableTargetError(
                f"greedy stalled at reach={math.exp(log_r):.12f} "
                f"< K={k_target}"
            )
        j, priority = heap.pop()
        g = -priority[0]  # type: ignore[index]
        counts[j] += 1
        total += 1
        increments += 1
        log_r += math.log(g)
        if total > cap:
            raise UnreachableTargetError(
                f"optimize() exceeded the {cap}-message cap at "
                f"reach={math.exp(log_r):.9f} < K={k_target}"
            )
        g_next = gain(lambdas[j], counts[j])
        if g_next > 1.0:
            heap.push(j, (-g_next, j))  # type: ignore[arg-type]

    return OptimizeResult(
        counts=counts,
        achieved=reach(tree, counts, view),
        total_messages=total,
        increments=increments,
    )


def optimize_bruteforce(
    tree: SpanningTree,
    k_target: float,
    view: ReliabilityView,
    max_per_link: int = 8,
) -> OptimizeResult:
    """Exhaustive reference optimizer (exponential — tests only).

    Enumerates all vectors with ``1 <= m_j <= max_per_link`` and returns
    one with minimal total messages among those meeting ``K`` (ties broken
    by highest reach, then lexicographically by node id for determinism).

    Raises:
        UnreachableTargetError: if no enumerated vector meets ``K``.
    """
    check_open_probability(k_target, "k_target")
    nodes = list(tree.non_root_nodes)
    if not nodes:
        return OptimizeResult(counts={}, achieved=1.0, total_messages=0, increments=0)
    if len(nodes) > 6:
        raise ValidationError(
            f"brute force limited to 6 links, tree has {len(nodes)}"
        )
    best: Optional[Tuple[int, float, Tuple[int, ...]]] = None
    for combo in itertools.product(range(1, max_per_link + 1), repeat=len(nodes)):
        counts = dict(zip(nodes, combo))
        r = reach(tree, counts, view)
        if r < k_target:
            continue
        key = (sum(combo), -r, combo)
        if best is None or key < (best[0], -best[1], best[2]):
            best = (sum(combo), r, combo)
    if best is None:
        raise UnreachableTargetError(
            f"no vector with m_j <= {max_per_link} reaches K={k_target}"
        )
    total, achieved, combo = best
    return OptimizeResult(
        counts=dict(zip(nodes, combo)),
        achieved=achieved,
        total_messages=total,
        increments=total - len(nodes),
    )


def optimize_for_budget(
    tree: SpanningTree,
    budget: int,
    view: ReliabilityView,
) -> OptimizeResult:
    """The dual problem of Eq. 5: maximise reach subject to ``sum(m) <= M``.

    Runs the same greedy with the stop condition swapped (footnote 3 of
    Appendix D).  Used by the equivalence tests for Lemma 3.

    Raises:
        ValidationError: if ``budget`` cannot cover the minimal vector.
    """
    nodes = tree.non_root_nodes
    if budget < len(nodes):
        raise ValidationError(
            f"budget {budget} below the minimal vector size {len(nodes)}"
        )
    lambdas = tree.lambdas(view)
    counts: Dict[ProcessId, int] = {j: 1 for j in nodes}
    heap: AddressableHeap[ProcessId] = AddressableHeap()
    for j in nodes:
        g = gain(lambdas[j], 1)
        if g > 1.0:
            heap.push(j, (-g, j))  # type: ignore[arg-type]
    total = len(nodes)
    increments = 0
    while total < budget and heap:
        j, _ = heap.pop()
        counts[j] += 1
        total += 1
        increments += 1
        g_next = gain(lambdas[j], counts[j])
        if g_next > 1.0:
            heap.push(j, (-g_next, j))  # type: ignore[arg-type]
    return OptimizeResult(
        counts=counts,
        achieved=reach(tree, counts, view),
        total_messages=total,
        increments=increments,
    )
