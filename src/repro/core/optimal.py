"""The optimal probabilistic reliable broadcast (Section 3, Algorithm 1).

Every process knows the true topology ``G`` and configuration ``C``.  To
broadcast, a process builds its Maximum Reliability Tree, optimises the
per-link copy counts for the target ``K`` and pushes the copies down the
tree; receivers forward along the *received* tree from their own position
(the ``S_{j,k}`` of Algorithm 1, line 10) and deliver.

Of theoretical interest on its own (Theorem 1: it is optimal w.r.t. the
number of messages), it is also the behavioural target the adaptive
algorithm converges to, and the "Optimal algorithm" denominator of
Figure 4.
"""

from __future__ import annotations

from typing import Any

from repro.core.broadcast import DataMessage, MessageId, ReliableBroadcastProcess
from repro.core.mrt import maximum_reliability_tree
from repro.core.optimize import OptimizeResult, optimize
from repro.core.tree import ReliabilityView, SpanningTree
from repro.sim.monitors import BroadcastMonitor
from repro.sim.network import Network
from repro.sim.trace import MessageCategory
from repro.types import ProcessId


class OptimalBroadcast(ReliableBroadcastProcess):
    """Algorithm 1 with perfect knowledge of ``(G, C)``.

    Args:
        pid: process id.
        network: simulated network (its ``config`` is the perfect
            knowledge this algorithm assumes).
        monitor: delivery monitor.
        k_target: reliability target ``K``.
        recompute_at_receiver: if True, receivers re-run ``optimize`` on
            the received tree (Algorithm 1 line 9, literally) instead of
            using the carried vector.  Both paths give identical counts —
            ``optimize`` is deterministic — and a test asserts so; the
            default avoids the redundant CPU.
    """

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        monitor: BroadcastMonitor,
        k_target: float = 0.99,
        recompute_at_receiver: bool = False,
    ) -> None:
        super().__init__(pid, network, monitor, k_target)
        self.recompute_at_receiver = recompute_at_receiver

    @property
    def _view(self) -> ReliabilityView:
        """The oracle's knowledge: always the *current* true configuration.

        Read through the network on every use so dynamic environments
        (``replace_configuration`` / scenario timelines) keep the optimal
        algorithm optimal for the environment of the moment.
        """
        return self.network.config

    # -- plan construction ------------------------------------------------------------

    def build_plan(self) -> OptimizeResult:
        """Compute ``(mrt_k, ~m)`` for a broadcast rooted at this process."""
        tree = maximum_reliability_tree(
            self.network.graph, self._view, root=self.pid
        )
        return optimize(tree, self.k_target, self._view)

    def plan_tree(self) -> SpanningTree:
        return maximum_reliability_tree(
            self.network.graph, self._view, root=self.pid
        )

    # -- Algorithm 1 --------------------------------------------------------------------

    def broadcast(self, payload: Any) -> MessageId:
        """Lines 1-4: build ``mrt_k``, propagate, deliver."""
        tree = self.plan_tree()
        result = optimize(tree, self.k_target, self._view)
        mid = self.next_message_id()
        message = DataMessage(
            mid=mid,
            payload=payload,
            tree=tree,
            counts=result.counts,
            k_target=self.k_target,
        )
        self._propagate(message)
        self.deliver(mid, payload)
        return mid

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        """Lines 5-7: first reception triggers forwarding + delivery."""
        if not isinstance(payload, DataMessage):
            return
        if self.has_delivered(payload.mid):
            return
        self._propagate(payload)
        self.deliver(payload.mid, payload.payload)

    def _propagate(self, message: DataMessage) -> None:
        """Lines 8-12: send ``~m[i]`` copies to each direct subtree root.

        ``S_{j,k}`` — the direct subtrees of *this* process within the
        message's tree; a process outside the tree (possible only with
        stale adaptive trees, never here) forwards nothing.
        """
        tree = message.tree
        if not tree.contains(self.pid):
            return
        counts = (
            optimize(tree, message.k_target, self._view).counts
            if self.recompute_at_receiver
            else message.counts
        )
        for child in tree.children(self.pid):
            copies = counts.get(child, 1)
            self.send_copies(
                child, message, copies, category=MessageCategory.DATA
            )
