"""Estimates with distortion factors and ``selectBestEstimate`` (Alg. 3).

An *estimate* is a process's current approximation of one failure
probability (of a process or a link).  Besides the Bayesian network it
carries (Section 4.2):

* ``distortion`` — how degraded the estimate is.  Two factors erode
  accuracy: *distance* (adopting a neighbour's estimate increments the
  factor, so it is lower-bounded by network distance) and *time* (Event 2
  increments it when no update arrives for a timeout period).  Fresh
  first-hand estimates have distortion 0; unknown ones start at infinity.
* ``seq`` — heartbeat sequence number (process estimates only).
* ``suspected`` — suspicions since the last heartbeat (neighbour
  processes only).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.bayesian import DEFAULT_INTERVALS, BeliefEstimator

#: Distortion of an estimate the process knows nothing about.
UNKNOWN_DISTORTION = math.inf


@dataclass
class Estimate:
    """One reliability estimate (``C_k[p_i]`` or ``C_k[l_j]``).

    Attributes:
        beliefs: the Bayesian network approximating the failure probability.
        distortion: the ``d`` field of Algorithm 4 (∞ = unknown).
        seq: last heartbeat sequence number seen (process estimates).
        suspected: suspicion count since the last heartbeat (neighbours).
        last_update: simulation time of the last refresh (drives Event 2).
    """

    beliefs: BeliefEstimator = field(default_factory=BeliefEstimator)
    distortion: float = UNKNOWN_DISTORTION
    seq: int = 0
    suspected: int = 0
    last_update: float = 0.0

    @classmethod
    def fresh(
        cls,
        intervals: int = DEFAULT_INTERVALS,
        distortion: float = UNKNOWN_DISTORTION,
        now: float = 0.0,
    ) -> "Estimate":
        """A new estimate with uniform beliefs (initializeReliability)."""
        return cls(
            beliefs=BeliefEstimator(intervals),
            distortion=distortion,
            last_update=now,
        )

    def copy(self) -> "Estimate":
        return Estimate(
            beliefs=self.beliefs.copy(),
            distortion=self.distortion,
            seq=self.seq,
            suspected=self.suspected,
            last_update=self.last_update,
        )

    def point_estimate(self) -> float:
        """Posterior-mean failure probability of this estimate."""
        return self.beliefs.point_estimate()

    def adopt(self, other: "Estimate", now: Optional[float] = None) -> None:
        """Replace this estimate's content with ``other``'s, incrementing
        distortion (Algorithm 3 lines 3-4: adopt, then ``d <- d + 1``).

        The local monitoring fields (``suspected``) are *not* adopted —
        they describe the adopting process's own observations.
        """
        self.beliefs = other.beliefs.copy()
        self.distortion = other.distortion + 1.0
        self.seq = other.seq
        if now is not None:
            self.last_update = now


def select_best_estimate(
    mine: Estimate, theirs: Estimate, now: Optional[float] = None
) -> bool:
    """Algorithm 3: adopt ``theirs`` iff it is strictly less distorted.

    Returns:
        ``True`` if ``mine`` was replaced (its distortion becomes
        ``theirs.distortion + 1`` — the estimate is now second-hand).
    """
    if theirs.distortion < mine.distortion:
        mine.adopt(theirs, now)
        return True
    return False
