"""The ``repro bench`` runner: hot-path benchmarks + the regression gate.

Three layers of the system are measured, smallest to largest:

* **engine** — the discrete-event kernel alone (``bench_engine_events``):
  interleaved timer chains with cancellations, no network, no RNG.  The
  metric is raw ``events_per_s``.
* **network** — the per-message delivery path (``bench_network_delivery``):
  a relay workload pushing messages through ``Network.send`` with crash
  and loss draws enabled, measuring the full send→deliver event cost.
* **scenario / figure** — end-to-end trial throughput
  (``bench_scenario_trials``, ``bench_figure4a_cell``): seeded scenario
  and experiment-registry runs, measured in ``trials_per_s``.

:func:`run_benches` executes a selection at a chosen scale and returns a
machine-readable summary (schema below); :func:`write_summary` persists
it — by convention to the repo-root ``BENCH_core.json``, which is the
committed baseline the CI ``perf`` job compares fresh runs against via
:func:`compare_summaries` (relative-tolerance regression gate).

Summary schema (``SCHEMA_VERSION`` guards future shape changes)::

    {
      "schema": 1,
      "repro_version": "1.0.0",
      "scale": "quick",
      "python": "3.11.7",
      "platform": "Linux-...-x86_64",
      "repeats": 3,
      "benchmarks": {
        "<name>": {
          "wall_s": 0.42,          # best of `repeats` timed runs
          "events": 200000,        # simulation events executed (if any)
          "events_per_s": 476190.5,
          "trials": 8,             # seeded trials executed (if any)
          "trials_per_s": 19.05,
          "scale": "quick"
        }, ...
      }
    }

Every bench is a pure function of (scale, pinned seed): repeated runs
execute the identical event schedule, so wall-clock differences measure
the implementation, not the workload.
"""

from __future__ import annotations

import json
import math
import platform
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError

#: Bump when the summary shape changes incompatibly.
SCHEMA_VERSION = 1

#: Default committed-baseline filename (repo root by convention).
DEFAULT_SUMMARY = "BENCH_core.json"

#: Workload sizes per scale preset: (engine events, relay hops,
#: scenario trials, figure trials-per-point).
_SIZES: Dict[str, Tuple[int, int, int, int]] = {
    "quick": (200_000, 25_000, 2, 2),
    "default": (600_000, 80_000, 4, 4),
    "full": (2_000_000, 250_000, 8, 8),
}


def _sizes(scale_name: str) -> Tuple[int, int, int, int]:
    try:
        return _SIZES[scale_name]
    except KeyError:
        raise ValidationError(
            f"unknown bench scale {scale_name!r}; choose from {sorted(_SIZES)}"
        ) from None


# -- individual benches -------------------------------------------------------------


def bench_engine_events(scale_name: str) -> Dict[str, float]:
    """Pure kernel throughput: timer chains + cancellations, no network.

    Four interleaved self-rescheduling chains with co-prime periods plus
    a cancel-heavy chain that arms and cancels a decoy per firing — so
    the pop-skip-cancelled path is part of the measured loop.
    """
    from repro.sim.engine import Simulator

    total = _sizes(scale_name)[0]
    sim = Simulator()
    per_chain = total // 5
    state = {"fired": 0}

    def make_chain(period: float):
        remaining = [per_chain]

        def tick() -> None:
            state["fired"] += 1
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(period, tick)

        return tick

    def make_cancelling_chain(period: float):
        remaining = [per_chain]

        def tick() -> None:
            state["fired"] += 1
            remaining[0] -= 1
            decoy = sim.schedule(period * 0.5, lambda: None)
            decoy.cancel()
            if remaining[0] > 0:
                sim.schedule(period, tick)

        return tick

    for period, maker in (
        (1.0, make_chain),
        (1.7, make_chain),
        (2.3, make_chain),
        (3.1, make_chain),
        (1.3, make_cancelling_chain),
    ):
        sim.schedule(period, maker(period))

    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    events = sim.executed_events
    return {"wall_s": wall, "events": float(events)}


def bench_network_delivery(scale_name: str) -> Dict[str, float]:
    """Per-message path: Network.send with crash + loss draws enabled.

    A relay workload on a 24-node connectivity-6 graph: every delivered
    message is re-sent to all neighbours until its hop budget runs out,
    repeatedly re-seeded until the hop target is reached.  Exercises the
    crash-model, link-loss and latency draws plus delivery scheduling —
    the entire per-message hot path.
    """
    from repro.sim.engine import Simulator
    from repro.sim.network import Network
    from repro.sim.process import SimProcess
    from repro.topology.configuration import Configuration
    from repro.topology.generators import k_regular
    from repro.util.rng import RandomSource

    hop_target = _sizes(scale_name)[1]
    graph = k_regular(24, 6)
    config = Configuration.uniform(graph, crash=0.02, loss=0.05)

    class Relay(SimProcess):
        def on_message(self, sender, payload) -> None:
            hops = payload
            if hops > 0:
                self.network.broadcast_to_neighbors(self.pid, hops - 1)

    sim = Simulator()
    network = Network(sim, config, RandomSource("bench-delivery"))
    relays = [Relay(p, network) for p in graph.processes]
    network.start()

    wave = [0]

    def seed_wave() -> None:
        origin = relays[wave[0] % len(relays)]
        wave[0] += 1
        origin.network.broadcast_to_neighbors(origin.pid, 4)
        if network.stats.sent() < hop_target:
            sim.schedule(5.0, seed_wave)

    sim.schedule(0.1, seed_wave)
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": float(sim.executed_events),
        "messages": float(network.stats.sent()),
    }


def bench_scenario_trials(scale_name: str) -> Dict[str, float]:
    """End-to-end scenario trial throughput (partition-heal, adaptive+gossip)."""
    from repro.experiments.runner import current_scale
    from repro.scenario.registry import build_scenario
    from repro.scenario.trial import run_scenario_trial

    trials = _sizes(scale_name)[2]
    spec = build_scenario("partition-heal", current_scale(scale_name))
    start = time.perf_counter()
    executed = 0
    for protocol in ("adaptive", "gossip"):
        for trial in range(trials):
            run_scenario_trial(spec, protocol, trial)
            executed += 1
    wall = time.perf_counter() - start
    return {"wall_s": wall, "trials": float(executed)}


def bench_figure4a_cell(scale_name: str) -> Dict[str, float]:
    """One figure4a cell through the experiment registry (serial, uncached)."""
    from repro.experiments.campaign import Campaign
    from repro.experiments.registry import resolve_experiment
    from repro.experiments.runner import current_scale

    trials = _sizes(scale_name)[3]
    spec = resolve_experiment("figure4a")
    campaign = Campaign(workers=1, cache=None)
    start = time.perf_counter()
    spec.run(
        scale=current_scale(scale_name),
        params={"crash": [0.03], "connectivity": [2, 4], "trials": [trials]},
        campaign=campaign,
    )
    wall = time.perf_counter() - start
    return {"wall_s": wall, "trials": float(campaign.executed)}


def bench_scenario_generate(scale_name: str) -> Dict[str, float]:
    """Scenario-generation throughput (specs sampled + validated)."""
    from repro.experiments.runner import current_scale
    from repro.scenario.generate import ScenarioGenerator

    counts = {"quick": 200, "default": 600, "full": 1500}
    count = counts.get(scale_name, 600)
    generator = ScenarioGenerator("bench", current_scale(scale_name))
    start = time.perf_counter()
    for index in range(count):
        generator.generate(index)
    wall = time.perf_counter() - start
    return {"wall_s": wall, "trials": float(count)}


def bench_scenario_hunt(scale_name: str) -> Dict[str, float]:
    """Adversarial search throughput (tiny budget, serial, with shrink)."""
    from repro.experiments.campaign import Campaign
    from repro.experiments.runner import current_scale
    from repro.scenario.adversarial import hunt

    budgets = {"quick": 3, "default": 6, "full": 12}
    budget = budgets.get(scale_name, 6)
    campaign = Campaign(workers=1, cache=None)
    start = time.perf_counter()
    hunt(
        "bench",
        budget,
        scale=current_scale(scale_name),
        top=2,
        trials=1,
        campaign=campaign,
    )
    wall = time.perf_counter() - start
    return {"wall_s": wall, "trials": float(campaign.executed)}


def bench_membership_exchange(scale_name: str) -> Dict[str, float]:
    """Peer-sampling exchange throughput: a standalone membership overlay.

    ``PeerSamplingService`` on every node of a connectivity-6 graph with
    crash + loss draws enabled, gossiping views for a fixed simulated
    horizon — the pure cost of the membership layer (exchange timers,
    view merges, CONTROL traffic) with no broadcast protocol on top.
    """
    from repro.membership.sampler import MembershipParams
    from repro.membership.service import PeerSamplingService
    from repro.sim.engine import Simulator
    from repro.sim.network import Network
    from repro.topology.configuration import Configuration
    from repro.topology.generators import k_regular
    from repro.util.rng import RandomSource

    sizes = {"quick": (64, 600.0), "default": (128, 1200.0), "full": (256, 2400.0)}
    n, horizon = sizes.get(scale_name, sizes["default"])
    graph = k_regular(n, 6)
    config = Configuration.uniform(graph, crash=0.02, loss=0.05)
    sim = Simulator()
    root = RandomSource("bench-membership")
    network = Network(sim, config, root)
    params = MembershipParams(view_size=8, exchange_period=5.0)
    services = [
        PeerSamplingService(p, network, params, rng=root)
        for p in graph.processes
    ]
    assert services
    network.start()
    start = time.perf_counter()
    sim.run(until=horizon)
    wall = time.perf_counter() - start
    return {"wall_s": wall, "events": float(sim.executed_events)}


def bench_kv_replication(scale_name: str) -> Dict[str, float]:
    """Causal KV replication throughput on the hot-key-storm scenario.

    Full application-layer trials — gossip replication, vector-clock
    stamping, causal buffering, the KV metrics monitor — so the bench
    times the whole "what does the user see" path, not just the
    transport.
    """
    from repro.experiments.runner import current_scale
    from repro.kvstore.trial import run_kv_trial
    from repro.scenario.registry import build_scenario

    counts = {"quick": 2, "default": 4, "full": 8}
    trials = counts.get(scale_name, 4)
    spec = build_scenario("hot-key-storm", current_scale(scale_name))
    start = time.perf_counter()
    for trial in range(trials):
        run_kv_trial(spec, "gossip", trial)
    wall = time.perf_counter() - start
    return {"wall_s": wall, "trials": float(trials)}


def bench_campaign_throughput(scale_name: str) -> Dict[str, float]:
    """Campaign engine + shard-queue overhead on a scenario trial grid.

    Streams the partition-heal protocols-x-trials grid through a
    Campaign on an in-process :class:`~repro.exec.ShardQueueBackend` —
    content-keyed sharding, steal scheduling and the incremental
    submission-order reorder buffer all included — so the bench times
    the execution layer exactly the way ``repro scenario run`` drives
    it, without multiprocessing spin-up noise.
    """
    from repro.exec import ShardQueueBackend
    from repro.experiments.campaign import Campaign
    from repro.scenario.run import compile_specs

    trials = _sizes(scale_name)[2]
    specs = compile_specs(
        "partition-heal", ("adaptive", "gossip"), scale_name, trials
    )
    campaign = Campaign(backend=ShardQueueBackend(workers=1, shards=4))
    start = time.perf_counter()
    results = campaign.run(specs)
    wall = time.perf_counter() - start
    return {"wall_s": wall, "trials": float(len(results))}


#: Registered benches in execution order.
BENCHES: Dict[str, Callable[[str], Dict[str, float]]] = {
    "engine-events": bench_engine_events,
    "network-delivery": bench_network_delivery,
    "scenario-trials": bench_scenario_trials,
    "figure4a-cell": bench_figure4a_cell,
    "scenario-generate": bench_scenario_generate,
    "scenario-hunt": bench_scenario_hunt,
    "membership-exchange": bench_membership_exchange,
    "kv-replication": bench_kv_replication,
    "campaign-throughput": bench_campaign_throughput,
}


# -- the runner ---------------------------------------------------------------------


def _finish_record(raw: Dict[str, float], scale_name: str) -> Dict[str, object]:
    """Derive throughput metrics from a bench's raw measurements."""
    wall = raw["wall_s"]
    record: Dict[str, object] = {"wall_s": round(wall, 4), "scale": scale_name}
    events = raw.get("events")
    if events:
        record["events"] = int(events)
        record["events_per_s"] = round(events / wall, 1) if wall > 0 else None
    trials = raw.get("trials")
    if trials:
        record["trials"] = int(trials)
        record["trials_per_s"] = round(trials / wall, 3) if wall > 0 else None
    messages = raw.get("messages")
    if messages:
        record["messages"] = int(messages)
    return record


def run_benches(
    scale_name: str = "quick",
    repeats: int = 3,
    names: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Run the selected benches; returns the machine-readable summary.

    Each bench runs ``repeats`` times and keeps the *fastest* run — the
    workload is deterministic, so the minimum is the cleanest estimate
    of the implementation's cost (slower repeats measure machine noise).
    """
    _sizes(scale_name)  # validate the scale before any work
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    selected = list(names) if names else list(BENCHES)
    unknown = [n for n in selected if n not in BENCHES]
    if unknown:
        raise ValidationError(
            f"unknown bench(es) {', '.join(sorted(unknown))}; "
            f"available: {', '.join(BENCHES)}"
        )
    from repro import __version__

    benchmarks: Dict[str, object] = {}
    for name in BENCHES:
        if name not in selected:
            continue
        fn = BENCHES[name]
        best: Optional[Dict[str, float]] = None
        for _ in range(repeats):
            raw = fn(scale_name)
            if best is None or raw["wall_s"] < best["wall_s"]:
                best = raw
        assert best is not None
        benchmarks[name] = _finish_record(best, scale_name)
    return {
        "schema": SCHEMA_VERSION,
        "repro_version": __version__,
        "scale": scale_name,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "benchmarks": benchmarks,
    }


def write_summary(summary: Dict[str, object], path: str) -> None:
    """Persist a summary, merging over an existing file's other benches.

    A selective run (``--bench engine-events``) must not clobber the
    remaining entries of a full baseline; per-entry ``scale`` stamps keep
    merged mixed-scale files interpretable.  Top-level fields the new
    summary does not set (e.g. ``platform`` when the pytest-bench
    conftest merges in) survive from the previous file.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            previous = json.load(fh)
        if not isinstance(previous, dict):
            previous = {}
    except (OSError, ValueError):
        previous = {}
    benchmarks = dict(previous.get("benchmarks", {}))
    benchmarks.update(summary["benchmarks"])
    merged = {**previous, **summary}
    merged["benchmarks"] = dict(sorted(benchmarks.items()))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_summary(summary: Dict[str, object]) -> str:
    """Human-readable table of one summary."""
    from repro.util.tables import render_table

    rows: List[List[object]] = []
    for name, record in sorted(summary["benchmarks"].items()):
        rows.append(
            [
                name,
                record.get("scale", "?"),
                record.get("wall_s"),
                record.get("events_per_s") or "-",
                record.get("trials_per_s") or "-",
            ]
        )
    title = (
        f"repro bench (scale {summary.get('scale', '?')}, "
        f"python {summary.get('python', '?')}, "
        f"best of {summary.get('repeats', '?')})"
    )
    return render_table(
        ["bench", "scale", "wall_s", "events/s", "trials/s"], rows, title=title
    )


# -- the regression gate ------------------------------------------------------------


def _throughput(record: Dict[str, object]) -> Tuple[str, float]:
    """The (metric name, value) a bench is gated on — higher is better."""
    for metric in ("events_per_s", "trials_per_s"):
        value = record.get(metric)
        if value:
            return metric, float(value)
    wall = record.get("wall_s")
    if wall:
        return "1/wall_s", 1.0 / float(wall)
    return "1/wall_s", math.nan


def load_summary(path: str) -> Dict[str, object]:
    """Read one summary file, validating the schema version."""
    with open(path, encoding="utf-8") as fh:
        summary = json.load(fh)
    if not isinstance(summary, dict) or "benchmarks" not in summary:
        raise ValidationError(f"{path} is not a bench summary")
    schema = summary.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValidationError(
            f"{path} has bench-summary schema {schema!r}; "
            f"this build reads schema {SCHEMA_VERSION}"
        )
    return summary


def compare_summaries(
    baseline: Dict[str, object],
    current: Dict[str, object],
    max_regression: float = 0.25,
) -> Tuple[str, List[str]]:
    """Diff two summaries; returns (report text, regressed bench names).

    A bench regresses when its throughput falls below
    ``baseline * (1 - max_regression)``.  Only benches present in both
    summaries *at the same scale* gate; mismatched or missing entries are
    reported but never fail the comparison (a renamed bench must not
    brick the gate — refresh the baseline instead).
    """
    if not 0.0 <= max_regression < 1.0:
        raise ValidationError(
            f"max-regression must be in [0, 1), got {max_regression}"
        )
    from repro.util.tables import render_table

    base_benches: Dict[str, Dict[str, object]] = baseline["benchmarks"]
    cur_benches: Dict[str, Dict[str, object]] = current["benchmarks"]
    rows: List[List[object]] = []
    regressions: List[str] = []
    notes: List[str] = []
    for name in sorted(set(base_benches) | set(cur_benches)):
        base = base_benches.get(name)
        cur = cur_benches.get(name)
        if base is None or cur is None:
            notes.append(
                f"  note: {name} only in "
                f"{'current' if base is None else 'baseline'} — not gated"
            )
            continue
        if base.get("scale") != cur.get("scale"):
            notes.append(
                f"  note: {name} measured at different scales "
                f"({base.get('scale')} vs {cur.get('scale')}) — not gated"
            )
            continue
        metric, base_value = _throughput(base)
        cur_metric, cur_value = _throughput(cur)
        if cur_metric != metric or math.isnan(base_value) or math.isnan(cur_value):
            notes.append(f"  note: {name} has incomparable metrics — not gated")
            continue
        ratio = cur_value / base_value if base_value else math.inf
        regressed = ratio < (1.0 - max_regression)
        if regressed:
            regressions.append(name)
        rows.append(
            [
                name,
                metric,
                round(base_value, 1),
                round(cur_value, 1),
                f"{ratio:.2f}x",
                "REGRESSED" if regressed else "ok",
            ]
        )
    title = (
        f"bench compare (max regression {max_regression:.0%}: "
        f"fail below {1.0 - max_regression:.2f}x baseline throughput)"
    )
    report = render_table(
        ["bench", "metric", "baseline", "current", "ratio", "status"],
        rows,
        title=title,
    )
    if notes:
        report += "\n" + "\n".join(notes)
    verdict = (
        f"{len(regressions)} regression(s): {', '.join(regressions)}"
        if regressions
        else "no regressions"
    )
    return f"{report}\n\n{verdict}", regressions
