"""Figure 6 — scalability of the adaptive protocol (ring vs random tree).

The paper grows the system from 100 to 240 processes on two topologies:
a ring (worst case: information traverses half the system on average, so
convergence effort grows linearly with n) and random trees (convergence
effort stays nearly constant).  The metric is the same messages/link
counter as Figure 5, with a mildly unreliable uniform configuration.

Like Figures 4/5, every (topology, n, trial) cell is a seed-complete
campaign spec, so ``repro campaign figure6`` parallelises and caches the
sweep; ``--sweep topology=... --sweep size=... --sweep loss=...`` widens
or narrows the grid (multiple loss values add one curve per topology x
loss combination).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.campaign import Campaign, TrialSpec, chunked
from repro.experiments.figure5 import convergence_messages_per_link
from repro.experiments.runner import ExperimentScale, current_scale
from repro.topology.configuration import Configuration
from repro.topology.generators import random_tree, ring
from repro.util.rng import RandomSource
from repro.util.tables import Series, SeriesTable

#: Loss probability used for the scalability runs (mildly lossy links —
#: the paper does not state the exact value; 0.01 keeps suspicion traffic
#: representative without dominating convergence time).
DEFAULT_LOSS = 0.01

#: Topologies contrasted by the paper's Figure 6.
TOPOLOGIES = ("ring", "tree")


def scalability_trial_task(
    *,
    topology: str,
    n: int,
    loss: float,
    deadline: float,
    trial: int,
) -> Dict[str, float]:
    """Campaign task: one seeded convergence trial at system size ``n``.

    Ring graphs are deterministic; random trees draw their shape from the
    dedicated ``("fig6-tree", n, trial)`` stream, exactly as the serial
    runner always did.
    """
    n, trial = int(n), int(trial)
    loss = float(loss)
    if topology == "ring":
        graph = ring(n)
    elif topology == "tree":
        graph = random_tree(n, RandomSource("fig6-tree", n, trial))
    else:
        raise ValueError(f"topology must be 'ring' or 'tree', got {topology!r}")
    config = Configuration.uniform(graph, crash=0.0, loss=loss)
    effort = convergence_messages_per_link(
        graph,
        config,
        ("fig6", topology, n, trial),
        deadline=float(deadline),
    )
    return {"messages_per_link": effort}


SCALABILITY_FN = "repro.experiments.figure6:scalability_trial_task"


def _point_specs(
    topology: str,
    n: int,
    scale: ExperimentScale,
    trials: int,
    loss: float,
) -> List[TrialSpec]:
    return [
        TrialSpec.make(
            SCALABILITY_FN,
            topology=topology,
            n=int(n),
            loss=float(loss),
            deadline=float(scale.convergence_deadline),
            trial=trial,
        )
        for trial in range(trials)
    ]


def figure6_point(
    topology: str,
    n: int,
    scale: ExperimentScale,
    trials: Optional[int] = None,
    loss: float = DEFAULT_LOSS,
    campaign: Optional[Campaign] = None,
) -> Dict[str, float]:
    """Convergence effort for one (topology, n) point."""
    if topology not in TOPOLOGIES:
        raise ValueError(f"topology must be 'ring' or 'tree', got {topology!r}")
    campaign = campaign or Campaign()
    trials = scale.convergence_trials(trials)
    results = campaign.run(_point_specs(topology, n, scale, trials, loss))
    stats = Campaign.aggregate(results, "messages_per_link")
    return {
        "n": float(n),
        "messages_per_link": stats.mean,
        "stdev": stats.stdev,
        "trials": float(stats.count),
    }


def _cell_grid(
    scale: ExperimentScale,
    sizes: Optional[Sequence[int]],
    topologies: Optional[Sequence[str]],
    losses: Optional[Sequence[float]],
    loss: float,
):
    """The validated (topology, loss, n) cell grid of one Figure 6 run."""
    sizes = tuple(sizes or scale.figure6_sizes)
    topologies = tuple(topologies or TOPOLOGIES)
    losses = tuple(losses or (loss,))
    for topology in topologies:
        if topology not in TOPOLOGIES:
            raise ValueError(
                f"topology must be 'ring' or 'tree', got {topology!r}"
            )
    cells = [
        (topology, loss_value, n)
        for topology in topologies
        for loss_value in losses
        for n in sizes
    ]
    return cells, losses


def figure6_build(
    scale: ExperimentScale,
    sizes: Optional[Sequence[int]] = None,
    trials: Optional[int] = None,
    loss: float = DEFAULT_LOSS,
    topologies: Optional[Sequence[str]] = None,
    losses: Optional[Sequence[float]] = None,
) -> List[TrialSpec]:
    """All scalability trials of one Figure 6 grid, in cell order."""
    cells, _ = _cell_grid(scale, sizes, topologies, losses, loss)
    trials = scale.convergence_trials(trials)
    specs: List[TrialSpec] = []
    for topology, loss_value, n in cells:
        specs.extend(_point_specs(topology, n, scale, trials, loss_value))
    return specs


def figure6_aggregate(
    scale: ExperimentScale,
    results: Sequence[Dict[str, float]],
    sizes: Optional[Sequence[int]] = None,
    trials: Optional[int] = None,
    loss: float = DEFAULT_LOSS,
    topologies: Optional[Sequence[str]] = None,
    losses: Optional[Sequence[float]] = None,
) -> SeriesTable:
    """Fold ordered scalability results into the Figure 6 table."""
    cells, losses = _cell_grid(scale, sizes, topologies, losses, loss)
    trials = scale.convergence_trials(trials)
    table = SeriesTable(
        title="Figure 6 - adaptive algorithm scalability",
        x_label="number of processes",
    )
    series_map: Dict[object, Series] = {}
    for (topology, loss_value, n), chunk in zip(cells, chunked(results, trials)):
        key = (topology, loss_value)
        if key not in series_map:
            name = topology if len(losses) == 1 else f"{topology} L={loss_value:g}"
            series_map[key] = Series(name=name)
            table.add_series(series_map[key])
        stats = Campaign.aggregate(chunk, "messages_per_link")
        series_map[key].add(n, stats.mean)
    return table


def figure6_table(
    scale: Optional[ExperimentScale] = None,
    sizes: Optional[Sequence[int]] = None,
    trials: Optional[int] = None,
    loss: float = DEFAULT_LOSS,
    topologies: Optional[Sequence[str]] = None,
    losses: Optional[Sequence[float]] = None,
    campaign: Optional[Campaign] = None,
) -> SeriesTable:
    """Regenerate Figure 6: messages/link to converge vs system size.

    Args:
        topologies: subset of ``("ring", "tree")`` to sweep.
        losses: loss probabilities to sweep; a single value keeps the
            paper's series naming (one curve per topology), several add
            ``L=`` suffixes and one curve per combination.
    """
    scale = scale or current_scale()
    campaign = campaign or Campaign()
    results = campaign.run(
        figure6_build(scale, sizes, trials, loss, topologies, losses)
    )
    return figure6_aggregate(
        scale, results, sizes, trials, loss, topologies, losses
    )
