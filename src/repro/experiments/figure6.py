"""Figure 6 — scalability of the adaptive protocol (ring vs random tree).

The paper grows the system from 100 to 240 processes on two topologies:
a ring (worst case: information traverses half the system on average, so
convergence effort grows linearly with n) and random trees (convergence
effort stays nearly constant).  The metric is the same messages/link
counter as Figure 5, with a mildly unreliable uniform configuration.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.convergence import ConvergenceCriterion
from repro.experiments.figure5 import convergence_messages_per_link
from repro.experiments.runner import ExperimentScale, current_scale
from repro.topology.configuration import Configuration
from repro.topology.generators import random_tree, ring
from repro.util.rng import RandomSource
from repro.util.stats import OnlineStats
from repro.util.tables import Series, SeriesTable

#: Loss probability used for the scalability runs (mildly lossy links —
#: the paper does not state the exact value; 0.01 keeps suspicion traffic
#: representative without dominating convergence time).
DEFAULT_LOSS = 0.01


def figure6_point(
    topology: str,
    n: int,
    scale: ExperimentScale,
    trials: Optional[int] = None,
    loss: float = DEFAULT_LOSS,
) -> Dict[str, float]:
    """Convergence effort for one (topology, n) point."""
    trials = trials if trials is not None else max(3, scale.trials // 5)
    stats = OnlineStats()
    for t in range(trials):
        if topology == "ring":
            graph = ring(n)
        elif topology == "tree":
            graph = random_tree(n, RandomSource("fig6-tree", n, t))
        else:
            raise ValueError(f"topology must be 'ring' or 'tree', got {topology!r}")
        config = Configuration.uniform(graph, crash=0.0, loss=loss)
        stats.add(
            convergence_messages_per_link(
                graph,
                config,
                ("fig6", topology, n, t),
                deadline=scale.convergence_deadline,
            )
        )
    return {
        "n": float(n),
        "messages_per_link": stats.mean,
        "stdev": stats.stdev,
        "trials": float(stats.count),
    }


def figure6_table(
    scale: Optional[ExperimentScale] = None,
    sizes: Optional[Sequence[int]] = None,
    trials: Optional[int] = None,
    loss: float = DEFAULT_LOSS,
) -> SeriesTable:
    """Regenerate Figure 6: messages/link to converge vs system size."""
    scale = scale or current_scale()
    sizes = tuple(sizes or scale.figure6_sizes)
    table = SeriesTable(
        title="Figure 6 - adaptive algorithm scalability",
        x_label="number of processes",
    )
    for topology in ("ring", "tree"):
        series = Series(name=topology)
        for n in sizes:
            point = figure6_point(topology, n, scale, trials, loss)
            series.add(n, point["messages_per_link"])
        table.add_series(series)
    return table
