"""Table 1 — Bayesian belief adaptation after a failure suspicion.

The paper illustrates Algorithm 5 with ``U = 5``: equal a-priori beliefs
(case a) become ``[0.04, 0.12, 0.20, 0.28, 0.36]`` after one suspicion
(case b).  This module regenerates both cases from the implementation.

Each interval row is a campaign task (exact, seed-free), so Table 1 runs
through the same parallel/cached/registry machinery as every other
experiment — trivially cheap here, but uniform.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bayesian import BeliefEstimator
from repro.experiments.campaign import Campaign, TrialSpec

#: The paper's published case-(b) beliefs, for verification.
PAPER_AFTER_SUSPICION = (0.04, 0.12, 0.20, 0.28, 0.36)

#: Title/headers shared by the text renderer and the registry's
#: ResultSet aggregation, so both surfaces print the same table.
TABLE1_TITLE = "Table 1 - adapting failure beliefs after a suspicion"
TABLE1_HEADERS = ("interval", "P_F|B", "P_B initial", "P_B after suspicion")


def belief_row_task(*, intervals: int, u: int) -> Dict[str, float]:
    """Campaign task: one belief interval's row of Table 1."""
    intervals, u = int(intervals), int(u)
    initial = BeliefEstimator(intervals)
    after = BeliefEstimator(intervals)
    after.decrease_reliability(1)
    lo, hi = initial.interval_bounds(u)
    return {
        "lo": float(lo),
        "hi": float(hi),
        "midpoint": float(initial.midpoints[u]),
        "initial": float(initial.beliefs[u]),
        "after": float(after.beliefs[u]),
    }


BELIEF_FN = "repro.experiments.table1:belief_row_task"


def table1_build(intervals: int = 5) -> List[TrialSpec]:
    """One spec per belief interval."""
    return [
        TrialSpec.make(BELIEF_FN, intervals=int(intervals), u=u)
        for u in range(intervals)
    ]


def table1_aggregate(
    results: Sequence[Dict[str, float]], intervals: int = 5
) -> List[Tuple[str, float, float, float]]:
    """Fold the per-interval results into Table 1's rows."""
    rows = []
    for u, result in enumerate(results):
        lo, hi = result["lo"], result["hi"]
        bounds = (
            f"[{lo:.1f}, {hi:.1f})" if u < intervals - 1 else f"[{lo:.1f}, {hi:.1f}]"
        )
        rows.append(
            (bounds, result["midpoint"], result["initial"], result["after"])
        )
    return rows


def table1_rows(
    intervals: int = 5, campaign: Optional[Campaign] = None
) -> List[Tuple[str, float, float, float]]:
    """Rows: (interval bounds, P_F|B midpoint, initial belief, after one
    suspicion)."""
    campaign = campaign or Campaign()
    return table1_aggregate(campaign.run(table1_build(intervals)), intervals)


def table1_render(
    intervals: int = 5, campaign: Optional[Campaign] = None
) -> str:
    """Render Table 1 as text (initial vs after-suspicion beliefs)."""
    from repro.util.tables import render_table

    rows = table1_rows(intervals, campaign=campaign)
    return render_table(
        headers=list(TABLE1_HEADERS),
        rows=[list(r) for r in rows],
        title=TABLE1_TITLE,
        precision=4,
    )
