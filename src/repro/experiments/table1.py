"""Table 1 — Bayesian belief adaptation after a failure suspicion.

The paper illustrates Algorithm 5 with ``U = 5``: equal a-priori beliefs
(case a) become ``[0.04, 0.12, 0.20, 0.28, 0.36]`` after one suspicion
(case b).  This module regenerates both cases from the implementation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.bayesian import BeliefEstimator

#: The paper's published case-(b) beliefs, for verification.
PAPER_AFTER_SUSPICION = (0.04, 0.12, 0.20, 0.28, 0.36)


def table1_rows(intervals: int = 5) -> List[Tuple[str, float, float, float]]:
    """Rows: (interval bounds, P_F|B midpoint, initial belief, after one
    suspicion)."""
    initial = BeliefEstimator(intervals)
    after = BeliefEstimator(intervals)
    after.decrease_reliability(1)
    rows = []
    for u in range(intervals):
        lo, hi = initial.interval_bounds(u)
        rows.append(
            (
                f"[{lo:.1f}, {hi:.1f})" if u < intervals - 1 else f"[{lo:.1f}, {hi:.1f}]",
                float(initial.midpoints[u]),
                float(initial.beliefs[u]),
                float(after.beliefs[u]),
            )
        )
    return rows


def table1_render(intervals: int = 5) -> str:
    """Render Table 1 as text (initial vs after-suspicion beliefs)."""
    from repro.util.tables import render_table

    rows = table1_rows(intervals)
    return render_table(
        headers=["interval", "P_F|B", "P_B initial", "P_B after suspicion"],
        rows=[list(r) for r in rows],
        title="Table 1 - adapting failure beliefs after a suspicion",
        precision=4,
    )
