"""Shared experiment plumbing: scales, seeded trials, network factories.

The figure modules build their trial grids from an :class:`ExperimentScale`
and execute them through :class:`repro.experiments.campaign.Campaign`
(serially by default; in parallel with caching under ``repro campaign``).
This module owns the sizing presets and the seed-derivation helpers both
paths share.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkOptions
from repro.topology.configuration import Configuration
from repro.util.rng import RandomSource, SeedLike
from repro.util.stats import OnlineStats

#: Environment variable selecting the benchmark scale preset.
SCALE_ENV = "REPRO_BENCH_SCALE"


@dataclass(frozen=True)
class ExperimentScale:
    """Sizing knobs shared by the figure experiments.

    Attributes:
        name: preset label.
        n: process count (paper: 100).
        k_target: reliability target ``K`` (paper: 0.9999 — see
            DESIGN.md §3 note 7 on why the default is 0.99).
        connectivities: x-axis of Figures 4/5.
        trials: measurement repetitions per point.
        calibration_trials: trials used when calibrating gossip rounds.
        convergence_deadline: simulated-time cap for Figures 5/6.
        figure6_sizes: x-axis of Figure 6 (paper: 100..240).
    """

    name: str
    n: int
    k_target: float
    connectivities: Tuple[int, ...]
    trials: int
    calibration_trials: int
    convergence_deadline: float
    figure6_sizes: Tuple[int, ...]

    def convergence_trials(self, override: Optional[int] = None) -> int:
        """Trials per convergence point (Figures 5/6 run fewer, >= 3)."""
        if override is not None:
            return override
        return max(3, self.trials // 5)


QUICK = ExperimentScale(
    name="quick",
    n=16,
    k_target=0.95,
    connectivities=(2, 4, 6),
    trials=8,
    calibration_trials=20,
    convergence_deadline=1500.0,
    figure6_sizes=(16, 24, 32),
)

DEFAULT = ExperimentScale(
    name="default",
    n=30,
    k_target=0.99,
    connectivities=(2, 4, 8, 12, 16),
    trials=20,
    calibration_trials=60,
    convergence_deadline=3000.0,
    figure6_sizes=(24, 36, 48, 60),
)

FULL = ExperimentScale(
    name="full",
    n=100,
    k_target=0.9999,
    connectivities=(2, 4, 6, 8, 10, 12, 14, 16, 18, 20),
    trials=50,
    calibration_trials=200,
    convergence_deadline=6000.0,
    figure6_sizes=(100, 140, 180, 220, 240),
)

_PRESETS: Dict[str, ExperimentScale] = {
    "quick": QUICK,
    "default": DEFAULT,
    "full": FULL,
}


def current_scale(override: Optional[str] = None) -> ExperimentScale:
    """Resolve the active scale (arg > env ``REPRO_BENCH_SCALE`` > default)."""
    name = override or os.environ.get(SCALE_ENV, "default")
    try:
        return _PRESETS[name.lower()]
    except KeyError:
        raise ValidationError(
            f"unknown scale {name!r}; choose from {sorted(_PRESETS)}"
        ) from None


def scaled(scale: ExperimentScale, **overrides) -> ExperimentScale:
    """Derive a scale with some fields replaced."""
    return replace(scale, **overrides)


def variant_axes(
    variant: str,
    values: Optional[Sequence[float]],
    defaults: Dict[str, Tuple[float, ...]],
    titles: Dict[str, str],
) -> Tuple[Tuple[float, ...], str, str]:
    """The (values, curve label, title) triple of a crash/loss variant.

    Figures 4 and 5 both come in a crash-probability (a) and a
    loss-probability (b) flavour; this is the one validation/defaulting
    path behind both modules' ``_variant_axes``.
    """
    if variant not in ("crash", "loss"):
        raise ValueError(f"variant must be 'crash' or 'loss', got {variant!r}")
    label = "P" if variant == "crash" else "L"
    return tuple(values or defaults[variant]), label, titles[variant]


def point_grid(
    scale: ExperimentScale, values: Sequence[float]
) -> List[Tuple[float, int]]:
    """The (probability value, connectivity) grid of Figures 4/5.

    Connectivities that cannot exist at ``scale.n`` are dropped, exactly
    as the serial builders always did.
    """
    return [
        (value, connectivity)
        for value in values
        for connectivity in scale.connectivities
        if connectivity < scale.n
    ]


def make_network(
    config: Configuration,
    seed: SeedLike,
    *extra_seed: SeedLike,
    options: Optional[NetworkOptions] = None,
) -> Network:
    """Fresh simulator + network with a derived deterministic seed."""
    sim = Simulator()
    rng = RandomSource("repro-experiment", seed, *extra_seed)
    return Network(sim, config, rng, options=options)


class TrialRunner:
    """Runs a seeded trial function several times and aggregates.

    Example:
        >>> runner = TrialRunner(base_seed="demo")
        >>> stats = runner.run(lambda seed: float(len(str(seed))), trials=3)
        >>> stats.count
        3
    """

    def __init__(self, base_seed: SeedLike = "trial") -> None:
        self._base_seed = base_seed

    def run(
        self,
        trial: Callable[[RandomSource], float],
        trials: int,
    ) -> OnlineStats:
        """Call ``trial`` with ``trials`` independent seed streams."""
        stats = OnlineStats()
        for index in range(trials):
            stream = RandomSource(self._base_seed, index)
            stats.add(trial(stream))
        return stats

    def run_many(
        self,
        trial: Callable[[RandomSource], Dict[str, float]],
        trials: int,
    ) -> Dict[str, OnlineStats]:
        """As :meth:`run` but the trial returns several named metrics."""
        stats: Dict[str, OnlineStats] = {}
        for index in range(trials):
            stream = RandomSource(self._base_seed, index)
            outcome = trial(stream)
            for key, value in outcome.items():
                stats.setdefault(key, OnlineStats()).add(value)
        return stats
