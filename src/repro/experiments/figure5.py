"""Figure 5 — convergence effort of the adaptive protocol.

The paper measures "the effort needed to converge (i.e., all processes in
the system learn the reliability probabilities) in number of messages per
link", which is "twice the number of heartbeat messages sent by a process
through a link until all processes converge": every process sends one
heartbeat per incident link per ``delta``, so messages/link accumulate at
2 per ``delta`` and the metric equals ``2 x convergence rounds``.

We run the full adaptive stack (vectorised views) until the
:func:`repro.analysis.convergence.views_converged` predicate holds and
report ``heartbeat messages sent / link count``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

from repro.analysis.convergence import ConvergenceCriterion, views_converged
from repro.core.adaptive import AdaptiveBroadcast, AdaptiveParameters
from repro.core.knowledge import KnowledgeParameters
from repro.errors import ConvergenceTimeoutError
from repro.experiments.runner import ExperimentScale, current_scale, make_network
from repro.sim.monitors import BroadcastMonitor, ConvergenceMonitor
from repro.sim.trace import MessageCategory
from repro.topology.configuration import Configuration
from repro.topology.generators import k_regular
from repro.topology.graph import Graph
from repro.util.stats import OnlineStats
from repro.util.tables import Series, SeriesTable

#: Probability values plotted in the paper for each variant.
PAPER_CRASH_VALUES = (0.0, 0.01, 0.03, 0.05)
PAPER_LOSS_VALUES = (0.0, 0.01, 0.03, 0.05)


def convergence_messages_per_link(
    graph: Graph,
    config: Configuration,
    seed_tag: object,
    deadline: float,
    criterion: Optional[ConvergenceCriterion] = None,
    poll_period: float = 5.0,
    params: Optional[AdaptiveParameters] = None,
    strict: bool = True,
) -> float:
    """Run the adaptive protocol until global convergence.

    Returns:
        Heartbeat messages per link at convergence time (the Figure 5/6
        metric).

    Raises:
        ConvergenceTimeoutError: if ``strict`` and the deadline passes
            without convergence.
    """
    criterion = criterion or ConvergenceCriterion()
    network = make_network(config, "fig5", seed_tag)
    monitor = BroadcastMonitor(graph.n)
    nodes = [
        AdaptiveBroadcast(p, network, monitor, 0.99, params)
        for p in graph.processes
    ]
    network.start()
    views = [node.view for node in nodes]
    watcher = ConvergenceMonitor(
        network.sim,
        lambda: views_converged(views, config, criterion),
        period=poll_period,
        stop_when_converged=True,
        deadline=deadline,
    )
    network.sim.run(until=deadline)
    if not watcher.converged:
        if strict:
            raise ConvergenceTimeoutError(
                f"no convergence within {deadline} time units "
                f"(n={graph.n}, links={graph.link_count})"
            )
        return math.inf
    return network.stats.sent(MessageCategory.HEARTBEAT) / graph.link_count


def figure5_point(
    connectivity: int,
    crash: float,
    loss: float,
    scale: ExperimentScale,
    trials: Optional[int] = None,
) -> Dict[str, float]:
    """One (connectivity, P, L) point of Figure 5 (mean over trials)."""
    graph = k_regular(scale.n, connectivity)
    config = Configuration.uniform(graph, crash=crash, loss=loss)
    stats = OnlineStats()
    trials = trials if trials is not None else max(3, scale.trials // 5)
    for t in range(trials):
        stats.add(
            convergence_messages_per_link(
                graph,
                config,
                (connectivity, crash, loss, t),
                deadline=scale.convergence_deadline,
            )
        )
    return {
        "connectivity": float(connectivity),
        "messages_per_link": stats.mean,
        "stdev": stats.stdev,
        "trials": float(stats.count),
    }


def figure5_table(
    variant: str = "crash",
    scale: Optional[ExperimentScale] = None,
    values: Optional[Sequence[float]] = None,
    trials: Optional[int] = None,
) -> SeriesTable:
    """Regenerate Figure 5(a) (``variant="crash"``) or 5(b) (``"loss"``).

    x = connectivity, y = heartbeat messages per link until all processes
    learned the reliability probabilities.
    """
    scale = scale or current_scale()
    if variant == "crash":
        values = tuple(values or PAPER_CRASH_VALUES)
        label = "P"
        title = "Figure 5(a) - convergence effort, reliable links (L=0)"
    elif variant == "loss":
        values = tuple(values or PAPER_LOSS_VALUES)
        label = "L"
        title = "Figure 5(b) - convergence effort, reliable processes (P=0)"
    else:
        raise ValueError(f"variant must be 'crash' or 'loss', got {variant!r}")

    table = SeriesTable(title=title, x_label="connectivity (links/process)")
    for value in values:
        series = Series(name=f"{label}={value:g}")
        for connectivity in scale.connectivities:
            if connectivity >= scale.n:
                continue
            crash = value if variant == "crash" else 0.0
            loss = value if variant == "loss" else 0.0
            point = figure5_point(connectivity, crash, loss, scale, trials)
            series.add(connectivity, point["messages_per_link"])
        table.add_series(series)
    return table
