"""Figure 5 — convergence effort of the adaptive protocol.

The paper measures "the effort needed to converge (i.e., all processes in
the system learn the reliability probabilities) in number of messages per
link", which is "twice the number of heartbeat messages sent by a process
through a link until all processes converge": every process sends one
heartbeat per incident link per ``delta``, so messages/link accumulate at
2 per ``delta`` and the metric equals ``2 x convergence rounds``.

We run the full adaptive stack (vectorised views) until the
:func:`repro.analysis.convergence.views_converged` predicate holds and
report ``heartbeat messages sent / link count``.  Trials are described as
campaign specs (seed-complete, spawn-safe), so ``repro campaign`` can
fan them out across worker processes with results identical to the
serial run.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.convergence import ConvergenceCriterion, views_converged
from repro.core.adaptive import AdaptiveParameters
from repro.errors import ConvergenceTimeoutError
from repro.experiments.campaign import Campaign, TrialSpec, chunked
from repro.protocols.registry import (
    AdaptiveProtocolParams,
    DeployContext,
    resolve_protocol,
)
from repro.experiments.runner import (
    ExperimentScale,
    current_scale,
    make_network,
    point_grid,
    variant_axes,
)
from repro.sim.monitors import BroadcastMonitor, ConvergenceMonitor
from repro.sim.trace import MessageCategory
from repro.topology.configuration import Configuration
from repro.topology.generators import k_regular
from repro.topology.graph import Graph
from repro.util.tables import Series, SeriesTable

#: Probability values plotted in the paper for each variant.
PAPER_CRASH_VALUES = (0.0, 0.01, 0.03, 0.05)
PAPER_LOSS_VALUES = (0.0, 0.01, 0.03, 0.05)


def _registry_params(
    params: Optional[AdaptiveParameters],
) -> AdaptiveProtocolParams:
    """Map the core parameter object onto the registry's flat params.

    Deployment goes through the protocol registry (the same
    ``factory(ctx)`` path as scenario trials); callers that tune
    :class:`AdaptiveParameters` directly keep working.
    """
    p = params or AdaptiveParameters()
    kp = p.knowledge
    return AdaptiveProtocolParams(
        delta=kp.delta,
        intervals=kp.intervals,
        tick=kp.tick,
        view_impl=p.view_impl,
        recompute_at_receiver=p.recompute_at_receiver,
        piggyback_knowledge=p.piggyback_knowledge,
    )


def convergence_messages_per_link(
    graph: Graph,
    config: Configuration,
    seed_tag: object,
    deadline: float,
    criterion: Optional[ConvergenceCriterion] = None,
    poll_period: float = 5.0,
    params: Optional[AdaptiveParameters] = None,
    strict: bool = True,
) -> float:
    """Run the adaptive protocol until global convergence.

    Returns:
        Heartbeat messages per link at convergence time (the Figure 5/6
        metric).

    Raises:
        ConvergenceTimeoutError: if ``strict`` and the deadline passes
            without convergence.
    """
    criterion = criterion or ConvergenceCriterion()
    network = make_network(config, "fig5", seed_tag)
    monitor = BroadcastMonitor(graph.n)
    nodes = resolve_protocol("adaptive").deploy(
        DeployContext(
            network=network,
            monitor=monitor,
            k_target=0.99,
            params=_registry_params(params),
        )
    )
    network.start()
    views = [node.view for node in nodes]
    watcher = ConvergenceMonitor(
        network.sim,
        lambda: views_converged(views, config, criterion),
        period=poll_period,
        stop_when_converged=True,
        deadline=deadline,
    )
    network.sim.run(until=deadline)
    if not watcher.converged:
        if strict:
            raise ConvergenceTimeoutError(
                f"no convergence within {deadline} time units "
                f"(n={graph.n}, links={graph.link_count})"
            )
        return math.inf
    return network.stats.sent(MessageCategory.HEARTBEAT) / graph.link_count


def convergence_trial_task(
    *,
    n: int,
    connectivity: int,
    crash: float,
    loss: float,
    deadline: float,
    trial: int,
) -> Dict[str, float]:
    """Campaign task: one seeded convergence trial on a k-regular graph.

    The seed tag reproduces the serial runner's
    ``(connectivity, crash, loss, trial)`` tuple exactly, so campaign
    execution is bit-identical to the serial loop.
    """
    connectivity, trial = int(connectivity), int(trial)
    crash, loss = float(crash), float(loss)
    graph = k_regular(int(n), connectivity)
    config = Configuration.uniform(graph, crash=crash, loss=loss)
    effort = convergence_messages_per_link(
        graph,
        config,
        (connectivity, crash, loss, trial),
        deadline=float(deadline),
    )
    return {"messages_per_link": effort}


CONVERGENCE_FN = "repro.experiments.figure5:convergence_trial_task"


def _point_specs(
    connectivity: int,
    crash: float,
    loss: float,
    scale: ExperimentScale,
    trials: int,
) -> List[TrialSpec]:
    return [
        TrialSpec.make(
            CONVERGENCE_FN,
            n=scale.n,
            connectivity=int(connectivity),
            crash=float(crash),
            loss=float(loss),
            deadline=float(scale.convergence_deadline),
            trial=trial,
        )
        for trial in range(trials)
    ]


def _point_row(
    connectivity: int, results: Sequence[Dict[str, float]]
) -> Dict[str, float]:
    stats = Campaign.aggregate(results, "messages_per_link")
    return {
        "connectivity": float(connectivity),
        "messages_per_link": stats.mean,
        "stdev": stats.stdev,
        "trials": float(stats.count),
    }


def figure5_point(
    connectivity: int,
    crash: float,
    loss: float,
    scale: ExperimentScale,
    trials: Optional[int] = None,
    campaign: Optional[Campaign] = None,
) -> Dict[str, float]:
    """One (connectivity, P, L) point of Figure 5 (mean over trials)."""
    campaign = campaign or Campaign()
    trials = scale.convergence_trials(trials)
    specs = _point_specs(connectivity, crash, loss, scale, trials)
    return _point_row(connectivity, campaign.run(specs))


def _variant_axes(
    variant: str, values: Optional[Sequence[float]]
) -> Tuple[Tuple[float, ...], str, str]:
    """The (values, curve label, title) triple of one Figure 5 variant."""
    return variant_axes(
        variant,
        values,
        defaults={"crash": PAPER_CRASH_VALUES, "loss": PAPER_LOSS_VALUES},
        titles={
            "crash": "Figure 5(a) - convergence effort, reliable links (L=0)",
            "loss": "Figure 5(b) - convergence effort, reliable processes (P=0)",
        },
    )


def figure5_build(
    variant: str,
    scale: ExperimentScale,
    values: Optional[Sequence[float]] = None,
    trials: Optional[int] = None,
) -> List[TrialSpec]:
    """All convergence trials of one Figure 5 variant, in grid order."""
    values, _, _ = _variant_axes(variant, values)
    trials = scale.convergence_trials(trials)
    specs: List[TrialSpec] = []
    for value, connectivity in point_grid(scale, values):
        crash = float(value) if variant == "crash" else 0.0
        loss = float(value) if variant == "loss" else 0.0
        specs.extend(_point_specs(connectivity, crash, loss, scale, trials))
    return specs


def figure5_aggregate(
    variant: str,
    scale: ExperimentScale,
    results: Sequence[Dict[str, float]],
    values: Optional[Sequence[float]] = None,
    trials: Optional[int] = None,
) -> SeriesTable:
    """Fold ordered convergence results into the Figure 5 table."""
    values, label, title = _variant_axes(variant, values)
    trials = scale.convergence_trials(trials)
    points = point_grid(scale, values)
    table = SeriesTable(title=title, x_label="connectivity (links/process)")
    by_value: Dict[float, Series] = {
        value: Series(name=f"{label}={value:g}") for value in values
    }
    for (value, connectivity), chunk in zip(points, chunked(results, trials)):
        row = _point_row(connectivity, chunk)
        by_value[value].add(connectivity, row["messages_per_link"])
    for value in values:
        table.add_series(by_value[value])
    return table


def figure5_table(
    variant: str = "crash",
    scale: Optional[ExperimentScale] = None,
    values: Optional[Sequence[float]] = None,
    trials: Optional[int] = None,
    campaign: Optional[Campaign] = None,
) -> SeriesTable:
    """Regenerate Figure 5(a) (``variant="crash"``) or 5(b) (``"loss"``).

    x = connectivity, y = heartbeat messages per link until all processes
    learned the reliability probabilities.  All points' trials run in one
    campaign batch, so worker processes stay busy across the whole grid.
    """
    scale = scale or current_scale()
    campaign = campaign or Campaign()
    results = campaign.run(figure5_build(variant, scale, values, trials))
    return figure5_aggregate(variant, scale, results, values, trials)
