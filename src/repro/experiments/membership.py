"""The ``membership`` experiment: partial-view quality under dynamics.

Sweeps peer-sampling policy triples (``view:peer:propagation``) and view
sizes over churn/partition scenarios, running a partial-view protocol
(``gossip-pv`` by default) through
:func:`repro.scenario.trial.membership_trial_task` so every trial emits
the :class:`~repro.membership.quality.ViewQualityMonitor` columns on top
of the usual delivery metrics.

One aggregated row per ``(scenario, policy, view_size)`` cell:

==================  =================================================
``delivery``        mean delivery ratio across trials
``indegree_mean``   mean in-degree of the final view graph
``indegree_p99``    p99 in-degree (load concentration proxy)
``indegree_max``    worst-case in-degree across trials
``staleness``       mean view-entry age relative to ``max_age``
``clustering``      mean directed view-overlap (clustering proxy)
``recovery_s``      mean partition-recovery time over the trials that
                    observed a heal (None when no trial did)
==================  =================================================
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence, Tuple

from repro.errors import ValidationError, did_you_mean
from repro.experiments.campaign import TrialSpec
from repro.experiments.runner import ExperimentScale
from repro.membership.sampler import PROPAGATION_POLICIES, SELECTION_POLICIES
from repro.results.schema import ResultSet
from repro.scenario.registry import scenario_trials
from repro.scenario.trial import MEMBERSHIP_TRIAL_FN

__all__ = [
    "DEFAULT_POLICIES",
    "DEFAULT_PROTOCOL",
    "DEFAULT_SCENARIOS",
    "DEFAULT_VIEW_SIZES",
    "MEMBERSHIP_COLUMNS",
    "membership_aggregate",
    "membership_build",
    "parse_policy_triple",
]

DEFAULT_VIEW_SIZES: Tuple[int, ...] = (8, 16)
DEFAULT_POLICIES: Tuple[str, ...] = (
    "head:rand:pushpull",  # Jelasity et al.'s recommended healer profile
    "head:head:push",  # cheapest: one-way traffic, youngest-first
    "rand:rand:pull",  # maximally randomised, reply-driven
)
DEFAULT_SCENARIOS: Tuple[str, ...] = ("churn-mill", "partition-heal")
DEFAULT_PROTOCOL = "gossip-pv"

MEMBERSHIP_COLUMNS: Tuple[str, ...] = (
    "scenario",
    "policy",
    "view_size",
    "delivery",
    "indegree_mean",
    "indegree_p99",
    "indegree_max",
    "staleness",
    "clustering",
    "recovery_s",
)


def parse_policy_triple(policy: str) -> Tuple[str, str, str]:
    """Split and validate a ``view:peer:propagation`` policy triple."""
    parts = str(policy).split(":")
    if len(parts) != 3:
        raise ValidationError(
            f"membership policy must be 'view:peer:propagation', got {policy!r}"
        )
    view, peer, propagation = (part.strip().lower() for part in parts)
    for value, options, label in (
        (view, SELECTION_POLICIES, "view selection"),
        (peer, SELECTION_POLICIES, "peer selection"),
        (propagation, PROPAGATION_POLICIES, "propagation"),
    ):
        if value not in options:
            _, hint = did_you_mean(value, options)
            raise ValidationError(
                f"unknown {label} {value!r} in policy {policy!r}; "
                f"options: {', '.join(options)}{hint}"
            )
    return view, peer, propagation


def _grid(
    scale: ExperimentScale, params
) -> Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[int, ...], str, int]:
    scenarios = tuple(params.scenario or DEFAULT_SCENARIOS)
    policies = tuple(params.policy or DEFAULT_POLICIES)
    view_sizes = tuple(params.view_size or DEFAULT_VIEW_SIZES)
    protocol = params.protocol or DEFAULT_PROTOCOL
    trials = scenario_trials(scale, params.trials)
    return scenarios, policies, view_sizes, protocol, trials


def membership_build(scale: ExperimentScale, params) -> List[TrialSpec]:
    """One trial spec per (scenario, policy, view_size, trial) cell."""
    scenarios, policies, view_sizes, protocol, trials = _grid(scale, params)
    specs: List[TrialSpec] = []
    for scenario in scenarios:
        for policy in policies:
            view, peer, propagation = parse_policy_triple(policy)
            for size in view_sizes:
                payload = json.dumps(
                    {
                        protocol: {
                            "view_size": int(size),
                            "view_selection": view,
                            "peer_selection": peer,
                            "propagation": propagation,
                        }
                    },
                    sort_keys=True,
                )
                for trial in range(trials):
                    specs.append(
                        TrialSpec.make(
                            MEMBERSHIP_TRIAL_FN,
                            scenario=str(scenario),
                            protocol=str(protocol),
                            scale=scale.name,
                            trial=trial,
                            params=payload,
                        )
                    )
    return specs


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def membership_aggregate(
    scale: ExperimentScale, params, results: Sequence[dict]
) -> ResultSet:
    """Fold per-trial metrics into one row per grid cell."""
    scenarios, policies, view_sizes, _, trials = _grid(scale, params)
    expected = len(scenarios) * len(policies) * len(view_sizes) * trials
    if len(results) != expected:
        raise ValidationError(
            f"membership aggregate expected {expected} trial results, "
            f"got {len(results)}"
        )
    rows: List[List[object]] = []
    index = 0
    for scenario in scenarios:
        for policy in policies:
            for size in view_sizes:
                chunk = results[index : index + trials]
                index += trials
                recoveries = [
                    r["view_partition_recovery"]
                    for r in chunk
                    if r["view_partition_recovery"] >= 0.0
                ]
                recovery: Optional[float] = (
                    _mean(recoveries) if recoveries else None
                )
                rows.append(
                    [
                        str(scenario),
                        str(policy),
                        int(size),
                        _mean([r["delivery_ratio"] for r in chunk]),
                        _mean([r["view_indegree_mean"] for r in chunk]),
                        _mean([r["view_indegree_p99"] for r in chunk]),
                        max(r["view_indegree_max"] for r in chunk),
                        _mean([r["view_staleness"] for r in chunk]),
                        _mean([r["view_clustering"] for r in chunk]),
                        recovery,
                    ]
                )
    return ResultSet.from_rows(
        "membership",
        "Partial-view membership quality (policy triples x view sizes)",
        MEMBERSHIP_COLUMNS,
        rows,
    )
