"""Figure 4 — reference gossip vs optimal algorithm message ratio.

The paper varies network connectivity (k-neighbour graphs over 100
processes) and plots the ratio

    messages(reference gossip) / messages(optimal algorithm)

for several crash probabilities with reliable links (Figure 4a) and
several loss probabilities with reliable processes (Figure 4b).  Both
algorithms must deliver to all processes with the same probability ``K``.

* The **optimal** side is deterministic: ``sum(~m)`` from ``optimize``
  over the MRT under the true configuration (the cost function of Eq. 3).
* The **reference** side is empirical: gossip rounds are first calibrated
  so the all-reached frequency meets ``K`` (the paper's "determined
  interactively"), then data-message counts are averaged over measurement
  trials.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.mrt import maximum_reliability_tree
from repro.core.optimize import optimize
from repro.experiments.runner import ExperimentScale, current_scale, make_network
from repro.protocols.gossip import calibrate_rounds, run_gossip_trial
from repro.topology.configuration import Configuration
from repro.topology.generators import k_regular
from repro.topology.graph import Graph
from repro.util.stats import OnlineStats
from repro.util.tables import Series, SeriesTable

#: Probability values plotted in the paper for each variant.
PAPER_CRASH_VALUES = (0.01, 0.03, 0.05, 0.07)
PAPER_LOSS_VALUES = (0.01, 0.03, 0.05, 0.07)


def optimal_messages(graph: Graph, config: Configuration, k_target: float) -> int:
    """``c(~m)`` of the optimal algorithm (deterministic)."""
    tree = maximum_reliability_tree(graph, config, root=0)
    return optimize(tree, k_target, config).total_messages


def reference_messages(
    graph: Graph,
    config: Configuration,
    k_target: float,
    scale: ExperimentScale,
    seed_tag: str,
    count_acks: bool = False,
) -> Tuple[float, int]:
    """Mean gossip data messages at the calibrated round budget.

    Returns:
        ``(mean_messages, rounds)``.
    """
    rounds = calibrate_rounds(
        lambda t: make_network(config, "fig4-cal", seed_tag, t),
        k_target=k_target,
        trials=scale.calibration_trials,
    )
    stats = OnlineStats()
    for t in range(scale.trials):
        outcome = run_gossip_trial(
            lambda t=t: make_network(config, "fig4-meas", seed_tag, t),
            rounds=rounds,
            k_target=k_target,
        )
        messages = outcome["data_messages"]
        if count_acks:
            messages += outcome["ack_messages"]
        stats.add(messages)
    return stats.mean, rounds


def figure4_point(
    connectivity: int,
    crash: float,
    loss: float,
    scale: ExperimentScale,
    count_acks: bool = False,
) -> Dict[str, float]:
    """One (connectivity, P, L) point: the ratio and its components."""
    graph = k_regular(scale.n, connectivity)
    config = Configuration.uniform(graph, crash=crash, loss=loss)
    optimal = optimal_messages(graph, config, scale.k_target)
    seed_tag = f"k{connectivity}-P{crash}-L{loss}-n{scale.n}"
    reference, rounds = reference_messages(
        graph, config, scale.k_target, scale, seed_tag, count_acks
    )
    return {
        "connectivity": float(connectivity),
        "optimal_messages": float(optimal),
        "reference_messages": reference,
        "rounds": float(rounds),
        "ratio": reference / optimal,
    }


def figure4_table(
    variant: str = "crash",
    scale: Optional[ExperimentScale] = None,
    values: Optional[Sequence[float]] = None,
    count_acks: bool = False,
) -> SeriesTable:
    """Regenerate Figure 4(a) (``variant="crash"``) or 4(b) (``"loss"``).

    Each curve fixes one probability value; the x-axis sweeps network
    connectivity.  y = reference/optimal message ratio.
    """
    scale = scale or current_scale()
    if variant == "crash":
        values = tuple(values or PAPER_CRASH_VALUES)
        label = "P"
        title = "Figure 4(a) - reference/optimal ratio, reliable links (L=0)"
    elif variant == "loss":
        values = tuple(values or PAPER_LOSS_VALUES)
        label = "L"
        title = "Figure 4(b) - reference/optimal ratio, reliable processes (P=0)"
    else:
        raise ValueError(f"variant must be 'crash' or 'loss', got {variant!r}")

    table = SeriesTable(title=title, x_label="connectivity (links/process)")
    for value in values:
        series = Series(name=f"{label}={value:g}")
        for connectivity in scale.connectivities:
            if connectivity >= scale.n:
                continue
            crash = value if variant == "crash" else 0.0
            loss = value if variant == "loss" else 0.0
            point = figure4_point(connectivity, crash, loss, scale, count_acks)
            series.add(connectivity, point["ratio"])
        table.add_series(series)
    return table
