"""Figure 4 — reference gossip vs optimal algorithm message ratio.

The paper varies network connectivity (k-neighbour graphs over 100
processes) and plots the ratio

    messages(reference gossip) / messages(optimal algorithm)

for several crash probabilities with reliable links (Figure 4a) and
several loss probabilities with reliable processes (Figure 4b).  Both
algorithms must deliver to all processes with the same probability ``K``.

* The **optimal** side is deterministic: ``sum(~m)`` from ``optimize``
  over the MRT under the true configuration (the cost function of Eq. 3).
* The **reference** side is empirical: gossip rounds are first calibrated
  so the all-reached frequency meets ``K`` (the paper's "determined
  interactively"), then data-message counts are averaged over measurement
  trials.  Every trial deploys the gossip stack through the protocol
  registry (:mod:`repro.protocols.registry`) — the registry's
  ``needs_calibration`` capability flag marks exactly this knob.

Execution is campaign-based (see :mod:`repro.experiments.campaign`):
:func:`figure4_table` describes every calibration and measurement trial
as a seed-complete :class:`~repro.experiments.campaign.TrialSpec` and a
:class:`~repro.experiments.campaign.Campaign` runs them — serially
in-process by default, or fanned out over worker processes with on-disk
result caching, with bit-identical aggregates either way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mrt import maximum_reliability_tree
from repro.core.optimize import optimize
from repro.experiments.campaign import Campaign, TrialSpec, chunked
from repro.experiments.runner import (
    ExperimentScale,
    current_scale,
    make_network,
    point_grid,
    variant_axes,
)
from repro.protocols.gossip import calibrate_rounds, run_gossip_trial
from repro.topology.configuration import Configuration
from repro.topology.generators import k_regular
from repro.topology.graph import Graph
from repro.util.stats import OnlineStats
from repro.util.tables import Series, SeriesTable

#: Probability values plotted in the paper for each variant.
PAPER_CRASH_VALUES = (0.01, 0.03, 0.05, 0.07)
PAPER_LOSS_VALUES = (0.01, 0.03, 0.05, 0.07)


def optimal_messages(graph: Graph, config: Configuration, k_target: float) -> int:
    """``c(~m)`` of the optimal algorithm (deterministic)."""
    tree = maximum_reliability_tree(graph, config, root=0)
    return optimize(tree, k_target, config).total_messages


def calibrate_reference(
    config: Configuration, seed_tag: str, k_target: float, trials: int
) -> int:
    """Calibrate the gossip round budget for one configuration.

    Seeds are fully determined by ``seed_tag`` and the trial index, so
    the result is identical wherever this runs.
    """
    return calibrate_rounds(
        lambda t: make_network(config, "fig4-cal", seed_tag, t),
        k_target=k_target,
        trials=trials,
    )


def measure_reference_once(
    config: Configuration,
    seed_tag: str,
    trial: int,
    rounds: int,
    k_target: float,
    count_acks: bool = False,
) -> float:
    """One seeded gossip measurement trial: the message count."""
    outcome = run_gossip_trial(
        lambda: make_network(config, "fig4-meas", seed_tag, trial),
        rounds=rounds,
        k_target=k_target,
    )
    messages = outcome["data_messages"]
    if count_acks:
        messages += outcome["ack_messages"]
    return messages


def _uniform_config(
    n: int, connectivity: int, crash: float, loss: float
) -> Tuple[Graph, Configuration]:
    graph = k_regular(n, connectivity)
    return graph, Configuration.uniform(graph, crash=crash, loss=loss)


# -- campaign trial functions (spawn-safe module-level entry points) ----------------


def gossip_calibration_task(
    *,
    n: int,
    connectivity: int,
    crash: float,
    loss: float,
    k_target: float,
    trials: int,
    seed_tag: str,
) -> Dict[str, float]:
    """Campaign task: calibrate rounds for a uniform configuration."""
    _, config = _uniform_config(n, connectivity, float(crash), float(loss))
    rounds = calibrate_reference(config, seed_tag, k_target, trials)
    return {"rounds": float(rounds)}


def gossip_measurement_task(
    *,
    n: int,
    connectivity: int,
    crash: float,
    loss: float,
    k_target: float,
    rounds: int,
    trial: int,
    seed_tag: str,
    count_acks: bool = False,
) -> Dict[str, float]:
    """Campaign task: one gossip measurement trial on a uniform config."""
    _, config = _uniform_config(n, connectivity, float(crash), float(loss))
    messages = measure_reference_once(
        config, seed_tag, trial, rounds, k_target, count_acks
    )
    return {"messages": messages}


CALIBRATION_FN = "repro.experiments.figure4:gossip_calibration_task"
MEASUREMENT_FN = "repro.experiments.figure4:gossip_measurement_task"


def reference_messages(
    graph: Graph,
    config: Configuration,
    k_target: float,
    scale: ExperimentScale,
    seed_tag: str,
    count_acks: bool = False,
) -> Tuple[float, int]:
    """Mean gossip data messages at the calibrated round budget.

    In-process serial path (used by :func:`figure4_point` and the
    heterogeneous extension); the campaign tasks above compute the exact
    same per-trial values from the same seeds.

    Returns:
        ``(mean_messages, rounds)``.
    """
    rounds = calibrate_reference(
        config, seed_tag, k_target, scale.calibration_trials
    )
    stats = OnlineStats()
    for t in range(scale.trials):
        stats.add(
            measure_reference_once(
                config, seed_tag, t, rounds, k_target, count_acks
            )
        )
    return stats.mean, rounds


def figure4_point(
    connectivity: int,
    crash: float,
    loss: float,
    scale: ExperimentScale,
    count_acks: bool = False,
) -> Dict[str, float]:
    """One (connectivity, P, L) point: the ratio and its components."""
    graph, config = _uniform_config(scale.n, connectivity, crash, loss)
    optimal = optimal_messages(graph, config, scale.k_target)
    seed_tag = _seed_tag(connectivity, crash, loss, scale.n)
    reference, rounds = reference_messages(
        graph, config, scale.k_target, scale, seed_tag, count_acks
    )
    return {
        "connectivity": float(connectivity),
        "optimal_messages": float(optimal),
        "reference_messages": reference,
        "rounds": float(rounds),
        "ratio": reference / optimal,
    }


def _seed_tag(connectivity: int, crash: float, loss: float, n: int) -> str:
    return f"k{connectivity}-P{crash}-L{loss}-n{n}"


def _variant_axes(
    variant: str, values: Optional[Sequence[float]]
) -> Tuple[Tuple[float, ...], str, str]:
    """The (values, curve label, title) triple of one Figure 4 variant."""
    return variant_axes(
        variant,
        values,
        defaults={"crash": PAPER_CRASH_VALUES, "loss": PAPER_LOSS_VALUES},
        titles={
            "crash": "Figure 4(a) - reference/optimal ratio, reliable links (L=0)",
            "loss": "Figure 4(b) - reference/optimal ratio, reliable processes (P=0)",
        },
    )


def _probs(variant: str, value: float) -> Tuple[float, float]:
    """The (crash, loss) pair a swept value denotes in this variant."""
    return (float(value), 0.0) if variant == "crash" else (0.0, float(value))


def figure4_build(
    variant: str,
    scale: ExperimentScale,
    campaign: Campaign,
    values: Optional[Sequence[float]] = None,
    count_acks: bool = False,
) -> List[TrialSpec]:
    """Phase 1 + the phase-2 specs of one Figure 4 variant.

    The calibration phase (one round-budget fit per grid point) runs
    through ``campaign`` immediately — its results parameterise the
    measurement specs this returns.  Callers (``figure4_table``, the
    experiment registry) run the returned specs through the same
    campaign and hand the results to :func:`figure4_aggregate`.
    """
    values, _, _ = _variant_axes(variant, values)
    points = point_grid(scale, values)

    # Phase 1: one calibration per (value, connectivity) point.
    cal_specs: List[TrialSpec] = []
    for value, connectivity in points:
        crash, loss = _probs(variant, value)
        cal_specs.append(
            TrialSpec.make(
                CALIBRATION_FN,
                n=scale.n,
                connectivity=connectivity,
                crash=crash,
                loss=loss,
                k_target=scale.k_target,
                trials=scale.calibration_trials,
                seed_tag=_seed_tag(connectivity, crash, loss, scale.n),
            )
        )
    calibrations = campaign.run(cal_specs)

    # Phase 2: the measurement trials, fanned out across all points.
    meas_specs: List[TrialSpec] = []
    for (value, connectivity), calibration in zip(points, calibrations):
        crash, loss = _probs(variant, value)
        for trial in range(scale.trials):
            meas_specs.append(
                TrialSpec.make(
                    MEASUREMENT_FN,
                    n=scale.n,
                    connectivity=connectivity,
                    crash=crash,
                    loss=loss,
                    k_target=scale.k_target,
                    rounds=int(calibration["rounds"]),
                    trial=trial,
                    seed_tag=_seed_tag(connectivity, crash, loss, scale.n),
                    count_acks=count_acks,
                )
            )
    return meas_specs


def figure4_aggregate(
    variant: str,
    scale: ExperimentScale,
    measurements: Sequence[Dict[str, float]],
    values: Optional[Sequence[float]] = None,
) -> SeriesTable:
    """Fold ordered measurement results into the Figure 4 table."""
    values, label, title = _variant_axes(variant, values)
    points = point_grid(scale, values)
    table = SeriesTable(title=title, x_label="connectivity (links/process)")
    by_value: Dict[float, Series] = {
        value: Series(name=f"{label}={value:g}") for value in values
    }
    for (value, connectivity), chunk in zip(
        points, chunked(measurements, scale.trials)
    ):
        crash, loss = _probs(variant, value)
        graph, config = _uniform_config(scale.n, connectivity, crash, loss)
        optimal = optimal_messages(graph, config, scale.k_target)
        reference = Campaign.aggregate(chunk, "messages").mean
        by_value[value].add(connectivity, reference / optimal)
    for value in values:
        table.add_series(by_value[value])
    return table


def figure4_table(
    variant: str = "crash",
    scale: Optional[ExperimentScale] = None,
    values: Optional[Sequence[float]] = None,
    count_acks: bool = False,
    campaign: Optional[Campaign] = None,
) -> SeriesTable:
    """Regenerate Figure 4(a) (``variant="crash"``) or 4(b) (``"loss"``).

    Each curve fixes one probability value; the x-axis sweeps network
    connectivity.  y = reference/optimal message ratio.

    Args:
        campaign: execution engine; defaults to a serial, cache-less
            :class:`Campaign`.  Pass one with ``workers > 1`` and/or a
            :class:`~repro.util.cache.TrialCache` to parallelise — the
            table is identical in all cases.
    """
    scale = scale or current_scale()
    campaign = campaign or Campaign()
    meas_specs = figure4_build(
        variant, scale, campaign, values=values, count_acks=count_acks
    )
    measurements = campaign.run(meas_specs)
    return figure4_aggregate(variant, scale, measurements, values=values)
