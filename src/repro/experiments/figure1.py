"""Figure 1 — adaptive vs traditional gossip on the two-path model.

Pure closed-form regeneration (Appendix A); the property tests separately
validate the formulas against Monte-Carlo simulation.

Although every point is analytic, the experiment runs through the same
campaign machinery as the simulated figures: each ``(L, alpha)`` point is
a seed-free :class:`~repro.experiments.campaign.TrialSpec`, so parallel
execution, on-disk caching and the experiment registry treat Figure 1
exactly like Figures 4/5/6.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.two_paths import message_ratio
from repro.experiments.campaign import Campaign, TrialSpec
from repro.util.tables import Series, SeriesTable

#: The loss probabilities plotted in the paper's Figure 1.
PAPER_LOSSES = (1e-2, 1e-3, 1e-4)

#: The alpha range of the paper's x-axis.
PAPER_ALPHAS = tuple(range(1, 11))


def two_path_ratio_task(*, loss: float, alpha: float) -> Dict[str, float]:
    """Campaign task: one analytic ``k1/k0`` point of Figure 1."""
    return {"ratio": message_ratio(float(loss), float(alpha))}


RATIO_FN = "repro.experiments.figure1:two_path_ratio_task"


def _grid(
    losses: Sequence[float], alphas: Iterable[float]
) -> List[Tuple[float, float]]:
    return [(loss, alpha) for loss in losses for alpha in alphas]


def figure1_build(
    losses: Sequence[float] = PAPER_LOSSES,
    alphas: Iterable[float] = PAPER_ALPHAS,
) -> List[TrialSpec]:
    """One spec per (L, alpha) point, in the serial plotting order."""
    return [
        TrialSpec.make(RATIO_FN, loss=float(loss), alpha=float(alpha))
        for loss, alpha in _grid(losses, list(alphas))
    ]


def figure1_aggregate(
    results: Sequence[Dict[str, float]],
    losses: Sequence[float] = PAPER_LOSSES,
    alphas: Iterable[float] = PAPER_ALPHAS,
) -> SeriesTable:
    """Fold the point results back into the Figure 1 series table."""
    table = SeriesTable(
        title="Figure 1 - adaptive vs traditional gossip (k1/k0)",
        x_label="alpha",
    )
    by_loss: Dict[float, Series] = {}
    for (loss, alpha), result in zip(_grid(losses, list(alphas)), results):
        if loss not in by_loss:
            by_loss[loss] = Series(name=f"L={loss:g}")
            table.add_series(by_loss[loss])
        by_loss[loss].add(alpha, result["ratio"])
    return table


def figure1_table(
    losses: Sequence[float] = PAPER_LOSSES,
    alphas: Iterable[float] = PAPER_ALPHAS,
    campaign: Optional[Campaign] = None,
) -> SeriesTable:
    """``k1/k0`` versus ``alpha``, one curve per ``L`` — Figure 1."""
    campaign = campaign or Campaign()
    alphas = list(alphas)
    results = campaign.run(figure1_build(losses, alphas))
    return figure1_aggregate(results, losses, alphas)


def expected_anchor_points() -> dict:
    """Anchor values stated in the paper's introduction, for verification.

    *"When alpha = 10 ... L = 0.0001, an adaptive algorithm only needs
    about 87% of the messages sent by a traditional gossip algorithm"*,
    and at ``alpha = 1`` the ratio is exactly 1.
    """
    return {
        ("alpha=1", "any L"): 1.0,
        ("alpha=10", "L=1e-4"): 0.875,
    }
