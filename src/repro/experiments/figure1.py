"""Figure 1 — adaptive vs traditional gossip on the two-path model.

Pure closed-form regeneration (Appendix A); the property tests separately
validate the formulas against Monte-Carlo simulation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.two_paths import ratio_series
from repro.util.tables import SeriesTable

#: The loss probabilities plotted in the paper's Figure 1.
PAPER_LOSSES = (1e-2, 1e-3, 1e-4)

#: The alpha range of the paper's x-axis.
PAPER_ALPHAS = tuple(range(1, 11))


def figure1_table(
    losses: Sequence[float] = PAPER_LOSSES,
    alphas: Iterable[float] = PAPER_ALPHAS,
) -> SeriesTable:
    """``k1/k0`` versus ``alpha``, one curve per ``L`` — Figure 1."""
    return ratio_series(losses=losses, alphas=alphas)


def expected_anchor_points() -> dict:
    """Anchor values stated in the paper's introduction, for verification.

    *"When alpha = 10 ... L = 0.0001, an adaptive algorithm only needs
    about 87% of the messages sent by a traditional gossip algorithm"*,
    and at ``alpha = 1`` the ratio is exactly 1.
    """
    return {
        ("alpha=1", "any L"): 1.0,
        ("alpha=10", "L=1e-4"): 0.875,
    }
