"""Experiment harness regenerating every table and figure of Section 5.

Each module exposes a ``*_table()`` function returning a
:class:`repro.util.tables.SeriesTable` with the same rows/curves the paper
plots; the benchmark suite calls these and prints the tables.

Scales: the paper runs 100 processes with ``K = 0.9999``; certifying that
reliability empirically needs orders of magnitude more trials than a
laptop benchmark should burn, so each experiment accepts an
:class:`ExperimentScale` (default: reduced sizes, ``K = 0.99``) and the
``REPRO_BENCH_SCALE`` environment variable selects ``quick`` /
``default`` / ``full`` (paper-sized) presets.  The README's
paper-mapping table links every figure to its module, benchmark and
tests; ``docs/architecture.md`` describes the campaign runner that
executes these experiments in parallel with on-disk caching.
"""

from repro.experiments.campaign import Campaign, TrialSpec, execute_spec
from repro.experiments.runner import ExperimentScale, TrialRunner, current_scale
from repro.experiments.figure1 import figure1_table
from repro.experiments.figure4 import figure4_table
from repro.experiments.figure5 import figure5_table
from repro.experiments.figure6 import figure6_table
from repro.experiments.heterogeneous import heterogeneity_table
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    experiment_names,
    experiment_specs,
    register_experiment,
    resolve_experiment,
    run_experiment,
    unregister_experiment,
)
from repro.experiments.table1 import table1_render

__all__ = [
    "Campaign",
    "ExperimentScale",
    "TrialRunner",
    "TrialSpec",
    "current_scale",
    "execute_spec",
    "figure1_table",
    "figure4_table",
    "figure5_table",
    "figure6_table",
    "heterogeneity_table",
    "table1_render",
    "ExperimentSpec",
    "ExperimentContext",
    "register_experiment",
    "unregister_experiment",
    "resolve_experiment",
    "experiment_names",
    "experiment_specs",
    "run_experiment",
]
