"""The ``kvstore`` experiment: end-to-end KV quality per protocol.

Sweeps broadcast protocols and workload mixes (Zipf skew × write ratio)
over dynamics scenarios, running every cell through
:func:`repro.kvstore.trial.kv_trial_task` so each trial reports what the
*user* sees — staleness, visibility latency, causal-buffer occupancy —
on top of the usual delivery/cost metrics.

One aggregated row per ``(scenario, protocol, zipf_s, write_ratio)``
cell:

===================  ==================================================
``delivery``         mean delivery ratio of the write broadcasts
``stale_reads``      mean fraction of reads that missed >= 1 write
``staleness_v``      mean per-read staleness in versions
``visibility_p50``   mean p50 write visibility latency (trials with
                     samples; None when no write ever reached a remote)
``visibility_p99``   likewise at p99
``buffer_mean``      mean causal-buffer occupancy (per-replica mean)
``buffer_max``       worst per-replica buffer depth across trials
``convergence_s``    mean post-dynamics convergence time over the trials
                     that converged (None when none did)
``data_msgs``        mean DATA messages (replication traffic)
``control_msgs``     mean CONTROL+HEARTBEAT messages (protocol overhead,
                     attributable thanks to the per-category split)
===================  ==================================================
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.experiments.campaign import TrialSpec
from repro.experiments.runner import ExperimentScale
from repro.kvstore.trial import KV_TRIAL_FN
from repro.kvstore.workload import KVWorkloadParams
from repro.results.schema import ResultSet
from repro.scenario.registry import scenario_trials

__all__ = [
    "DEFAULT_SCENARIOS",
    "DEFAULT_WRITE_RATIOS",
    "DEFAULT_ZIPF_S",
    "KV_COLUMNS",
    "kvstore_aggregate",
    "kvstore_build",
]

DEFAULT_SCENARIOS: Tuple[str, ...] = (
    "hot-key-storm",
    "partition-heal",
    "flash-crowd",
)
DEFAULT_ZIPF_S: Tuple[float, ...] = (0.9,)
DEFAULT_WRITE_RATIOS: Tuple[float, ...] = (0.3,)

KV_COLUMNS: Tuple[str, ...] = (
    "scenario",
    "protocol",
    "zipf_s",
    "write_ratio",
    "delivery",
    "stale_reads",
    "staleness_v",
    "visibility_p50",
    "visibility_p99",
    "buffer_mean",
    "buffer_max",
    "convergence_s",
    "data_msgs",
    "control_msgs",
)


def _default_protocols() -> Tuple[str, ...]:
    """All registered broadcast protocols, in registry order.

    Deferred so plugin protocols registered before the run participate;
    build and aggregate resolve the same ordered tuple within one
    process, so the result slicing stays aligned.
    """
    from repro.protocols.registry import protocol_names

    return protocol_names()


def _grid(scale: ExperimentScale, params):
    scenarios = tuple(params.scenario or DEFAULT_SCENARIOS)
    protocols = tuple(params.protocol or _default_protocols())
    zipfs = tuple(params.zipf_s or DEFAULT_ZIPF_S)
    ratios = tuple(params.write_ratio or DEFAULT_WRITE_RATIOS)
    trials = scenario_trials(scale, params.trials)
    return scenarios, protocols, zipfs, ratios, trials


def _workload(params, zipf_s: float, write_ratio: float) -> KVWorkloadParams:
    overrides = {
        name: getattr(params, name)
        for name in ("keys", "ops", "regions")
        if getattr(params, name) is not None
    }
    return KVWorkloadParams(
        zipf_s=float(zipf_s), write_ratio=float(write_ratio), **overrides
    )


def kvstore_build(scale: ExperimentScale, params) -> List[TrialSpec]:
    """One trial spec per (scenario, protocol, zipf, ratio, trial) cell."""
    scenarios, protocols, zipfs, ratios, trials = _grid(scale, params)
    specs: List[TrialSpec] = []
    for scenario in scenarios:
        for protocol in protocols:
            for zipf_s in zipfs:
                for write_ratio in ratios:
                    payload = _workload(params, zipf_s, write_ratio).to_payload()
                    for trial in range(trials):
                        specs.append(
                            TrialSpec.make(
                                KV_TRIAL_FN,
                                scenario=str(scenario),
                                protocol=str(protocol),
                                scale=scale.name,
                                trial=trial,
                                workload=payload,
                            )
                        )
    return specs


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _mean_present(values: Sequence[float]) -> Optional[float]:
    """Mean of the non-sentinel values (>= 0); None when all are missing."""
    present = [v for v in values if v >= 0.0]
    return _mean(present) if present else None


def kvstore_aggregate(
    scale: ExperimentScale, params, results: Sequence[dict]
) -> ResultSet:
    """Fold per-trial metrics into one row per grid cell."""
    scenarios, protocols, zipfs, ratios, trials = _grid(scale, params)
    expected = len(scenarios) * len(protocols) * len(zipfs) * len(ratios) * trials
    if len(results) != expected:
        raise ValidationError(
            f"kvstore aggregate expected {expected} trial results, "
            f"got {len(results)}"
        )
    rows: List[List[object]] = []
    index = 0
    for scenario in scenarios:
        for protocol in protocols:
            for zipf_s in zipfs:
                for write_ratio in ratios:
                    chunk = results[index : index + trials]
                    index += trials
                    rows.append(
                        [
                            str(scenario),
                            str(protocol),
                            float(zipf_s),
                            float(write_ratio),
                            _mean([r["delivery_ratio"] for r in chunk]),
                            _mean([r["kv_stale_reads"] for r in chunk]),
                            _mean(
                                [r["kv_staleness_versions"] for r in chunk]
                            ),
                            _mean_present(
                                [r["kv_visibility_p50"] for r in chunk]
                            ),
                            _mean_present(
                                [r["kv_visibility_p99"] for r in chunk]
                            ),
                            _mean([r["kv_buffer_mean"] for r in chunk]),
                            max(r["kv_buffer_max"] for r in chunk),
                            _mean_present(
                                [r["kv_convergence_time"] for r in chunk]
                            ),
                            _mean([r["data_messages"] for r in chunk]),
                            _mean(
                                [
                                    r["control_messages"]
                                    + r["heartbeat_messages"]
                                    for r in chunk
                                ]
                            ),
                        ]
                    )
    return ResultSet.from_rows(
        "kvstore",
        "Causal KV store quality (protocols x workload mixes x scenarios)",
        KV_COLUMNS,
        rows,
    )
