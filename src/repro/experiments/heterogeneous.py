"""Heterogeneous-environment extension (Section 7, future work).

The paper's Section 5 deliberately evaluates with *uniform* failure
probabilities and notes this "counts against" the adaptive algorithm;
Section 7 expects larger gains once probabilities differ across the
system.  This experiment quantifies that: it compares the
reference/optimal message ratio on

* a **uniform** configuration (every link loses with ``mean_loss``), and
* a **heterogeneous** one with the same *mean* loss but per-link values
  spread over ``[0, 2 * mean_loss]``,

so any ratio difference is attributable purely to the spread the
adaptive/optimal side can exploit (picking the reliable links) and the
oblivious baseline cannot.

Both configurations rebuild deterministically from scalars (the
heterogeneous one from its own ``("hetero", connectivity, seed)``
stream), so the calibration and measurement trials are campaign specs
like the Figure 4 ones and ``repro campaign heterogeneous`` parallelises
the comparison.  Protocol stacks deploy through the protocol registry
(via the shared gossip trial runner), never by direct construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.campaign import Campaign, TrialSpec, chunked
from repro.experiments.figure4 import (
    calibrate_reference,
    measure_reference_once,
    optimal_messages,
)
from repro.experiments.runner import ExperimentScale, current_scale
from repro.topology.configuration import Configuration
from repro.topology.generators import k_regular
from repro.topology.graph import Graph
from repro.util.rng import RandomSource
from repro.util.tables import Series, SeriesTable

MODES = ("uniform", "hetero")


def _build_config(
    mode: str,
    n: int,
    connectivity: int,
    mean_loss: float,
    spread: float,
    seed: int,
) -> Tuple[Graph, Configuration]:
    """Rebuild the compared configurations from their defining scalars."""
    graph = k_regular(n, connectivity)
    if mode == "uniform":
        return graph, Configuration.uniform(graph, loss=mean_loss)
    if mode == "hetero":
        lo = max(0.0, mean_loss * (1.0 - spread))
        hi = min(1.0, mean_loss * (1.0 + spread))
        return graph, Configuration.random_uniform(
            graph,
            RandomSource("hetero", connectivity, seed),
            crash_range=(0.0, 0.0),
            loss_range=(lo, hi),
        )
    raise ValueError(f"mode must be 'uniform' or 'hetero', got {mode!r}")


def _seed_tag(mode: str, connectivity: int, mean_loss: float, seed: int) -> str:
    return f"het-{mode}-{connectivity}-{mean_loss}-{seed}"


def hetero_calibration_task(
    *,
    mode: str,
    n: int,
    connectivity: int,
    mean_loss: float,
    spread: float,
    seed: int,
    k_target: float,
    trials: int,
) -> Dict[str, float]:
    """Campaign task: calibrate gossip rounds for one compared config."""
    connectivity, seed = int(connectivity), int(seed)
    mean_loss = float(mean_loss)
    _, config = _build_config(
        mode, int(n), connectivity, mean_loss, float(spread), seed
    )
    rounds = calibrate_reference(
        config, _seed_tag(mode, connectivity, mean_loss, seed), k_target, trials
    )
    return {"rounds": float(rounds)}


def hetero_measurement_task(
    *,
    mode: str,
    n: int,
    connectivity: int,
    mean_loss: float,
    spread: float,
    seed: int,
    k_target: float,
    rounds: int,
    trial: int,
) -> Dict[str, float]:
    """Campaign task: one gossip measurement trial on a compared config."""
    connectivity, seed = int(connectivity), int(seed)
    mean_loss = float(mean_loss)
    _, config = _build_config(
        mode, int(n), connectivity, mean_loss, float(spread), seed
    )
    messages = measure_reference_once(
        config,
        _seed_tag(mode, connectivity, mean_loss, seed),
        int(trial),
        int(rounds),
        k_target,
    )
    return {"messages": messages}


CALIBRATION_FN = "repro.experiments.heterogeneous:hetero_calibration_task"
MEASUREMENT_FN = "repro.experiments.heterogeneous:hetero_measurement_task"


def _cal_spec(
    mode: str,
    connectivity: int,
    mean_loss: float,
    scale: ExperimentScale,
    spread: float,
    seed: int,
) -> TrialSpec:
    return TrialSpec.make(
        CALIBRATION_FN,
        mode=mode,
        n=scale.n,
        connectivity=int(connectivity),
        mean_loss=float(mean_loss),
        spread=float(spread),
        seed=int(seed),
        k_target=scale.k_target,
        trials=scale.calibration_trials,
    )


def _meas_specs(
    mode: str,
    connectivity: int,
    mean_loss: float,
    scale: ExperimentScale,
    spread: float,
    seed: int,
    rounds: int,
) -> List[TrialSpec]:
    return [
        TrialSpec.make(
            MEASUREMENT_FN,
            mode=mode,
            n=scale.n,
            connectivity=int(connectivity),
            mean_loss=float(mean_loss),
            spread=float(spread),
            seed=int(seed),
            k_target=scale.k_target,
            rounds=int(rounds),
            trial=trial,
        )
        for trial in range(scale.trials)
    ]


def _aggregate_point(
    connectivity: int,
    mean_loss: float,
    scale: ExperimentScale,
    spread: float,
    seed: int,
    measurements: Dict[str, Sequence[Dict[str, float]]],
) -> Dict[str, float]:
    out: Dict[str, float] = {"connectivity": float(connectivity)}
    for mode in MODES:
        graph, config = _build_config(
            mode, scale.n, connectivity, mean_loss, spread, seed
        )
        optimal = optimal_messages(graph, config, scale.k_target)
        reference = Campaign.aggregate(measurements[mode], "messages").mean
        out[f"{mode}_optimal"] = float(optimal)
        out[f"{mode}_reference"] = reference
        out[f"{mode}_ratio"] = reference / optimal
    out["gain_delta"] = out["hetero_ratio"] - out["uniform_ratio"]
    return out


def heterogeneity_point(
    connectivity: int,
    mean_loss: float,
    scale: ExperimentScale,
    spread: float = 1.0,
    seed: int = 0,
    campaign: Optional[Campaign] = None,
) -> Dict[str, float]:
    """Ratios for a uniform vs an equal-mean heterogeneous configuration.

    Args:
        spread: half-width of the loss distribution relative to the mean
            (1.0 means per-link losses uniform over [0, 2*mean]).
    """
    campaign = campaign or Campaign()
    cal = campaign.run(
        [
            _cal_spec(mode, connectivity, mean_loss, scale, spread, seed)
            for mode in MODES
        ]
    )
    rounds = {mode: int(c["rounds"]) for mode, c in zip(MODES, cal)}
    measurements: Dict[str, Sequence[Dict[str, float]]] = {}
    for mode in MODES:
        measurements[mode] = campaign.run(
            _meas_specs(
                mode, connectivity, mean_loss, scale, spread, seed, rounds[mode]
            )
        )
    return _aggregate_point(
        connectivity, mean_loss, scale, spread, seed, measurements
    )


def _points(
    scale: ExperimentScale, connectivities: Optional[Sequence[int]]
) -> List[int]:
    connectivities = tuple(
        connectivities or [k for k in scale.connectivities if k <= 12]
    )
    return [k for k in connectivities if k < scale.n]


def heterogeneity_build(
    scale: ExperimentScale,
    campaign: Campaign,
    mean_loss: float = 0.05,
    connectivities: Optional[Sequence[int]] = None,
    spread: float = 1.0,
    seed: int = 0,
) -> List[TrialSpec]:
    """Calibration phase + the measurement specs of the comparison.

    As with Figure 4, the calibration fits run through ``campaign``
    eagerly; the returned measurement specs are what the caller (or the
    experiment registry) executes and aggregates.
    """
    points = _points(scale, connectivities)
    cal_specs = [
        _cal_spec(mode, k, mean_loss, scale, spread, seed)
        for k in points
        for mode in MODES
    ]
    calibrations = campaign.run(cal_specs)
    meas_specs: List[TrialSpec] = []
    for (k, mode), calibration in zip(
        [(k, mode) for k in points for mode in MODES], calibrations
    ):
        meas_specs.extend(
            _meas_specs(
                mode, k, mean_loss, scale, spread, seed, int(calibration["rounds"])
            )
        )
    return meas_specs


def heterogeneity_aggregate(
    scale: ExperimentScale,
    measurements: Sequence[Dict[str, float]],
    mean_loss: float = 0.05,
    connectivities: Optional[Sequence[int]] = None,
    spread: float = 1.0,
    seed: int = 0,
) -> SeriesTable:
    """Fold ordered measurement results into the comparison table."""
    points = _points(scale, connectivities)
    table = SeriesTable(
        title=(
            "Extension - heterogeneous environments "
            f"(mean L={mean_loss}, equal-mean comparison)"
        ),
        x_label="connectivity (links/process)",
    )
    uniform = Series("ratio (uniform L)")
    hetero = Series("ratio (heterogeneous L)")
    mode_chunks = chunked(measurements, scale.trials)
    for k in points:
        chunks: Dict[str, Sequence[Dict[str, float]]] = {
            mode: next(mode_chunks) for mode in MODES
        }
        point = _aggregate_point(k, mean_loss, scale, spread, seed, chunks)
        uniform.add(k, point["uniform_ratio"])
        hetero.add(k, point["hetero_ratio"])
    table.add_series(uniform)
    table.add_series(hetero)
    return table


def heterogeneity_table(
    scale: Optional[ExperimentScale] = None,
    mean_loss: float = 0.05,
    connectivities: Optional[Sequence[int]] = None,
    spread: float = 1.0,
    seed: int = 0,
    campaign: Optional[Campaign] = None,
) -> SeriesTable:
    """Reference/optimal ratio: uniform vs heterogeneous environments."""
    scale = scale or current_scale()
    campaign = campaign or Campaign()
    measurements = campaign.run(
        heterogeneity_build(
            scale, campaign, mean_loss, connectivities, spread, seed
        )
    )
    return heterogeneity_aggregate(
        scale, measurements, mean_loss, connectivities, spread, seed
    )
