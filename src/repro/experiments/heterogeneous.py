"""Heterogeneous-environment extension (Section 7, future work).

The paper's Section 5 deliberately evaluates with *uniform* failure
probabilities and notes this "counts against" the adaptive algorithm;
Section 7 expects larger gains once probabilities differ across the
system.  This experiment quantifies that: it compares the
reference/optimal message ratio on

* a **uniform** configuration (every link loses with ``mean_loss``), and
* a **heterogeneous** one with the same *mean* loss but per-link values
  spread over ``[0, 2 * mean_loss]``,

so any ratio difference is attributable purely to the spread the
adaptive/optimal side can exploit (picking the reliable links) and the
oblivious baseline cannot.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.figure4 import optimal_messages, reference_messages
from repro.experiments.runner import ExperimentScale, current_scale
from repro.topology.configuration import Configuration
from repro.topology.generators import k_regular
from repro.util.rng import RandomSource
from repro.util.tables import Series, SeriesTable


def heterogeneity_point(
    connectivity: int,
    mean_loss: float,
    scale: ExperimentScale,
    spread: float = 1.0,
    seed: int = 0,
) -> Dict[str, float]:
    """Ratios for a uniform vs an equal-mean heterogeneous configuration.

    Args:
        spread: half-width of the loss distribution relative to the mean
            (1.0 means per-link losses uniform over [0, 2*mean]).
    """
    graph = k_regular(scale.n, connectivity)
    uniform = Configuration.uniform(graph, loss=mean_loss)
    lo = max(0.0, mean_loss * (1.0 - spread))
    hi = min(1.0, mean_loss * (1.0 + spread))
    hetero = Configuration.random_uniform(
        graph,
        RandomSource("hetero", connectivity, seed),
        crash_range=(0.0, 0.0),
        loss_range=(lo, hi),
    )

    out: Dict[str, float] = {"connectivity": float(connectivity)}
    for label, config in (("uniform", uniform), ("hetero", hetero)):
        optimal = optimal_messages(graph, config, scale.k_target)
        reference, rounds = reference_messages(
            graph,
            config,
            scale.k_target,
            scale,
            seed_tag=f"het-{label}-{connectivity}-{mean_loss}-{seed}",
        )
        out[f"{label}_optimal"] = float(optimal)
        out[f"{label}_reference"] = reference
        out[f"{label}_ratio"] = reference / optimal
    out["gain_delta"] = out["hetero_ratio"] - out["uniform_ratio"]
    return out


def heterogeneity_table(
    scale: Optional[ExperimentScale] = None,
    mean_loss: float = 0.05,
    connectivities: Optional[Sequence[int]] = None,
) -> SeriesTable:
    """Reference/optimal ratio: uniform vs heterogeneous environments."""
    scale = scale or current_scale()
    connectivities = tuple(
        connectivities or [k for k in scale.connectivities if k <= 12]
    )
    table = SeriesTable(
        title=(
            "Extension - heterogeneous environments "
            f"(mean L={mean_loss}, equal-mean comparison)"
        ),
        x_label="connectivity (links/process)",
    )
    uniform = Series("ratio (uniform L)")
    hetero = Series("ratio (heterogeneous L)")
    for connectivity in connectivities:
        if connectivity >= scale.n:
            continue
        point = heterogeneity_point(connectivity, mean_loss, scale)
        uniform.add(connectivity, point["uniform_ratio"])
        hetero.add(connectivity, point["hetero_ratio"])
    table.add_series(uniform)
    table.add_series(hetero)
    return table
