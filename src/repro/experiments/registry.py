"""Experiment registry: every paper artefact as a first-class object.

PR 3 made protocols registry objects; this module does the same for the
experiments themselves.  Each of the paper's artefacts — Figures 1/4/5/6,
Table 1, and the heterogeneous-environment extension — is described by an
:class:`ExperimentSpec`: a canonical name plus aliases, the paper
artefact it regenerates, a typed parameter dataclass (the sweepable
axes), and a uniform two-hook execution contract:

* ``build(ctx) -> list[TrialSpec]`` — describe every trial as a
  seed-complete campaign spec (multi-phase experiments such as Figure 4
  run their calibration pre-phase through ``ctx.campaign`` and return
  the measurement specs);
* ``aggregate(ctx, results) -> ResultSet`` — fold the ordered results
  into a typed, provenance-stamped :class:`~repro.results.ResultSet`.

:func:`run_experiment` composes the two through a
:class:`~repro.experiments.campaign.Campaign`, so every registered
experiment — built-in or third-party — parallelises, caches and resumes
uniformly, and its output lands in the results store as durable data
rather than rendered text.

Third-party packages register experiments exactly like protocols:

* **entry points** — declare ``[project.entry-points."repro.experiments"]``
  pointing at an :class:`ExperimentSpec` (or a zero-argument callable /
  list of specs);
* **environment variable** — ``REPRO_EXPERIMENTS=module:attr,...``
  loads specs from importable modules (reaches campaign workers too).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields as dataclass_fields
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    get_args,
    get_origin,
    get_type_hints,
)

from repro.errors import (
    UnknownExperimentError,
    ValidationError,
    did_you_mean,
)
from repro.experiments.campaign import Campaign, TrialSpec
from repro.experiments.runner import ExperimentScale, current_scale, scaled
from repro.results.schema import Provenance, ResultSet
from repro.util.plugins import load_entry_point_plugins, load_env_plugins
from repro.util.validation import coerce_scalar, unwrap_optional

#: Entry-point group third-party packages register experiment specs under.
ENTRY_POINT_GROUP = "repro.experiments"

#: Comma-separated ``module:attr`` list of plugin specs to load.
PLUGIN_ENV = "REPRO_EXPERIMENTS"

#: Result type of one campaign trial.
TrialResult = Dict[str, float]


@dataclass
class ExperimentContext:
    """Everything an experiment's build/aggregate hooks may need.

    Attributes:
        scale: the sizing preset the run uses (before the experiment's
            own parameter overrides are applied — hooks derive their
            effective scale from ``scale`` + ``params``).
        campaign: execution engine; ``build`` hooks may run pre-phases
            (calibration) through it, and :func:`run_experiment` uses it
            for the main trial batch.
        params: instance of the spec's ``params_type`` (never None when
            the spec declares one — defaults are materialised).
    """

    scale: ExperimentScale
    campaign: Campaign
    params: Optional[object] = None


# -- typed per-experiment parameter dataclasses ---------------------------------------
#
# One frozen dataclass per experiment; the field names are the sweepable
# axes (``repro experiments run figure4a --sweep connectivity=2,4``).
# Tuple-typed fields accept several values (they widen/narrow a grid
# axis); scalar fields accept exactly one.


def _check_trials(trials: Optional[int]) -> None:
    if trials is not None and trials < 1:
        raise ValidationError(f"swept trials must be >= 1, got {trials}")


@dataclass(frozen=True)
class Figure1Params:
    """Axes of Figure 1: loss probabilities and path-asymmetry alphas."""

    loss: Optional[Tuple[float, ...]] = None
    alpha: Optional[Tuple[float, ...]] = None


@dataclass(frozen=True)
class Table1Params:
    """Axes of Table 1: the Bayesian interval count ``U``."""

    intervals: Optional[int] = None

    def __post_init__(self) -> None:
        if self.intervals is not None and self.intervals < 2:
            raise ValidationError(
                f"intervals must be >= 2, got {self.intervals}"
            )


@dataclass(frozen=True)
class Figure4aParams:
    """Axes of Figure 4(a): connectivity grid, crash probabilities."""

    connectivity: Optional[Tuple[int, ...]] = None
    crash: Optional[Tuple[float, ...]] = None
    n: Optional[int] = None
    trials: Optional[int] = None

    def __post_init__(self) -> None:
        _check_trials(self.trials)


@dataclass(frozen=True)
class Figure4bParams:
    """Axes of Figure 4(b): connectivity grid, loss probabilities."""

    connectivity: Optional[Tuple[int, ...]] = None
    loss: Optional[Tuple[float, ...]] = None
    n: Optional[int] = None
    trials: Optional[int] = None

    def __post_init__(self) -> None:
        _check_trials(self.trials)


@dataclass(frozen=True)
class Figure5aParams:
    """Axes of Figure 5(a): connectivity grid, crash probabilities."""

    connectivity: Optional[Tuple[int, ...]] = None
    crash: Optional[Tuple[float, ...]] = None
    n: Optional[int] = None
    trials: Optional[int] = None

    def __post_init__(self) -> None:
        _check_trials(self.trials)


@dataclass(frozen=True)
class Figure5bParams:
    """Axes of Figure 5(b): connectivity grid, loss probabilities."""

    connectivity: Optional[Tuple[int, ...]] = None
    loss: Optional[Tuple[float, ...]] = None
    n: Optional[int] = None
    trials: Optional[int] = None

    def __post_init__(self) -> None:
        _check_trials(self.trials)


@dataclass(frozen=True)
class Figure6Params:
    """Axes of Figure 6: system sizes, topologies, loss probabilities."""

    size: Optional[Tuple[int, ...]] = None
    topology: Optional[Tuple[str, ...]] = None
    loss: Optional[Tuple[float, ...]] = None
    trials: Optional[int] = None

    def __post_init__(self) -> None:
        _check_trials(self.trials)


@dataclass(frozen=True)
class MembershipExperimentParams:
    """Axes of the membership study: policy triples, view sizes, scenarios.

    ``policy`` entries are ``view:peer:propagation`` triples drawn from
    the :mod:`repro.membership` policy families, e.g.
    ``head:rand:pushpull``.
    """

    view_size: Optional[Tuple[int, ...]] = None
    policy: Optional[Tuple[str, ...]] = None
    scenario: Optional[Tuple[str, ...]] = None
    protocol: Optional[str] = None
    trials: Optional[int] = None

    def __post_init__(self) -> None:
        _check_trials(self.trials)


@dataclass(frozen=True)
class KVExperimentParams:
    """Axes of the KV-store study: protocols × workload mixes × scenarios.

    ``zipf_s`` and ``write_ratio`` widen the workload-mix grid; ``keys``,
    ``ops`` and ``regions`` are scalar workload knobs shared by every
    cell (see :class:`repro.kvstore.workload.KVWorkloadParams`).
    """

    scenario: Optional[Tuple[str, ...]] = None
    protocol: Optional[Tuple[str, ...]] = None
    zipf_s: Optional[Tuple[float, ...]] = None
    write_ratio: Optional[Tuple[float, ...]] = None
    keys: Optional[int] = None
    ops: Optional[int] = None
    regions: Optional[int] = None
    trials: Optional[int] = None

    def __post_init__(self) -> None:
        _check_trials(self.trials)


@dataclass(frozen=True)
class HeterogeneousParams:
    """Axes of the heterogeneous extension: connectivity grid, mean loss."""

    connectivity: Optional[Tuple[int, ...]] = None
    loss: Optional[float] = None
    n: Optional[int] = None
    trials: Optional[int] = None

    def __post_init__(self) -> None:
        _check_trials(self.trials)


# -- the spec -------------------------------------------------------------------------

BuildHook = Callable[[ExperimentContext], List[TrialSpec]]
AggregateHook = Callable[[ExperimentContext, Sequence[TrialResult]], ResultSet]


@dataclass(frozen=True)
class ExperimentSpec:
    """Descriptor of one registrable experiment.

    Attributes:
        name: canonical registry name (lower-case, e.g. ``figure4a``).
        description: one-line human summary.
        build: hook compiling the context into campaign trial specs
            (may run pre-phases through ``ctx.campaign``).
        aggregate: hook folding the ordered trial results into a
            :class:`~repro.results.ResultSet` (:func:`run_experiment`
            stamps provenance afterwards).
        artefact: the paper artefact the experiment regenerates
            (``"Figure 4(a)"``, ``"Table 1"``, ...).
        aliases: alternative accepted spellings.
        params_type: frozen dataclass of sweepable axes (None for a
            parameterless experiment).
        simulated: True when trials run the discrete-event simulator
            (these are the ones worth fanning out with ``--workers``);
            analytic experiments (Figure 1, Table 1) are False.
    """

    name: str
    description: str
    build: BuildHook
    aggregate: AggregateHook
    artefact: str = ""
    aliases: Tuple[str, ...] = ()
    params_type: Optional[type] = None
    simulated: bool = True

    def sweep_keys(self) -> Tuple[str, ...]:
        """The sweepable axis names (the params dataclass fields)."""
        if self.params_type is None:
            return ()
        return tuple(f.name for f in dataclass_fields(self.params_type))

    def param_fields(self) -> List[Tuple[str, str, object]]:
        """``(name, type name, default)`` rows for help/describe output."""
        if self.params_type is None:
            return []
        hints = get_type_hints(self.params_type)
        return [
            (f.name, _axis_type_name(hints[f.name]), f.default)
            for f in dataclass_fields(self.params_type)
        ]

    def make_params(
        self, overrides: Optional[Union[object, Dict[str, Any]]] = None
    ) -> Optional[object]:
        """Build the typed parameter object for one run.

        ``overrides`` may be an instance of ``params_type`` (returned
        as-is), or a mapping of axis name to value(s) — single values
        and lists both coerce, so CLI sweeps and API keyword overrides
        share one path.  Unknown axes raise with the supported keys and
        a closest-match suggestion.
        """
        if self.params_type is None:
            if overrides:
                raise ValidationError(
                    f"experiment {self.name!r} has no parameters; "
                    f"got overrides {sorted(overrides)}"
                )
            return None
        if overrides is None:
            return self.params_type()
        if isinstance(overrides, self.params_type):
            return overrides
        if not isinstance(overrides, dict):
            raise ValidationError(
                f"experiment params must be a {self.params_type.__name__} "
                f"or a dict, got {type(overrides).__name__}"
            )
        hints = get_type_hints(self.params_type)
        values: Dict[str, Any] = {}
        for key, value in overrides.items():
            axis = self._axis_name(key)
            values[axis] = _coerce_axis(self.name, axis, hints[axis], value)
        return self.params_type(**values)

    def _axis_name(self, key: str) -> str:
        """Resolve one override key to a sweep axis, or raise helpfully.

        Keys may carry the experiment's own name (or an alias) as a
        dotted prefix — ``kvstore.zipf_s`` means ``zipf_s`` — so sweep
        spellings stay uniform with the protocol registry's
        ``protocol.param`` convention.  Unknown axes raise the same
        ``did_you_mean`` suggestion shape as protocols and scenarios:
        ``--sweep kvstore.zipff_s=...`` suggests ``zipf_s`` and exits 2.
        """
        names = self.sweep_keys()
        bare = str(key)
        if "." in bare:
            prefix, _, rest = bare.partition(".")
            owners = {_norm(self.name), *(_norm(a) for a in self.aliases)}
            if _norm(prefix) in owners and rest:
                bare = rest
        if bare in names:
            return bare
        _, hint = did_you_mean(bare, names)
        raise ValidationError(
            f"experiment {self.name!r} does not sweep {bare!r}; "
            f"supported keys: {', '.join(names) or 'none'}{hint}"
        )

    def run(
        self,
        scale: Optional[ExperimentScale] = None,
        params: Optional[Union[object, Dict[str, Any]]] = None,
        campaign: Optional[Campaign] = None,
    ) -> ResultSet:
        """Build, execute and aggregate one run; see :func:`run_experiment`."""
        scale = scale or current_scale()
        campaign = campaign or Campaign()
        ctx = ExperimentContext(
            scale=scale, campaign=campaign, params=self.make_params(params)
        )
        specs = self.build(ctx)
        results = campaign.run(specs)
        result_set = self.aggregate(ctx, results)
        from dataclasses import replace

        return replace(
            result_set,
            provenance=Provenance.capture(
                experiment=self.name,
                artefact=self.artefact,
                scale=scale.name,
                params=_params_json(ctx.params),
                rng_ledger=(
                    dict(campaign.rng_draws) if campaign.rng_ledger else None
                ),
                execution=campaign.execution_record(),
            ),
        )


def _params_json(params: Optional[object]) -> Dict[str, object]:
    """The non-default axis overrides of a params instance, JSON-able."""
    if params is None:
        return {}
    out: Dict[str, object] = {}
    for f in dataclass_fields(params):
        value = getattr(params, f.name)
        if value is None:
            continue
        out[f.name] = list(value) if isinstance(value, tuple) else value
    return out


def _axis_type_name(hint: Any) -> str:
    """Human name of an axis type: ``int...`` for multi-value axes."""
    hint = unwrap_optional(hint)
    if get_origin(hint) is tuple:
        element = get_args(hint)[0]
        return f"{getattr(element, '__name__', element)}..."
    return getattr(hint, "__name__", str(hint))


def _coerce_axis(experiment: str, key: str, hint: Any, value: Any) -> Any:
    """Coerce one axis override: scalars for scalar axes, tuples for grids."""
    if value is None:
        return None
    base = unwrap_optional(hint)
    label = f"experiment parameter {experiment}.{key}"
    if get_origin(base) is tuple:
        element = get_args(base)[0]
        if isinstance(value, (list, tuple)):
            items = list(value)
        else:
            items = [value]
        return tuple(coerce_scalar(label, element, item) for item in items)
    if isinstance(value, (list, tuple)):
        if len(value) != 1:
            raise ValidationError(
                f"sweep key {key!r} accepts exactly one value here, "
                f"got {list(value)}"
            )
        value = value[0]
    return coerce_scalar(label, base, value)


# -- the registry ---------------------------------------------------------------------

_REGISTRY: Dict[str, ExperimentSpec] = {}  # canonical name -> spec, in order
_LOOKUP: Dict[str, str] = {}  # normalized name/alias -> canonical name
_plugins_loaded = False


def _norm(name: str) -> str:
    return str(name).strip().lower().replace("_", "-")


def register_experiment(
    spec: ExperimentSpec, replace: bool = False
) -> ExperimentSpec:
    """Register an experiment spec; returns it for chaining.

    Raises:
        ValidationError: on an empty/duplicate name or alias (unless
            ``replace`` is set, which atomically swaps the old spec out).
    """
    if not isinstance(spec, ExperimentSpec):
        raise ValidationError(
            "register_experiment takes an ExperimentSpec, "
            f"got {type(spec).__name__}"
        )
    name = _norm(spec.name)
    if not name:
        raise ValidationError("experiment name must be non-empty")
    if not callable(spec.build) or not callable(spec.aggregate):
        raise ValidationError(
            f"experiment {name!r} build/aggregate hooks must be callable"
        )
    keys = [name] + [_norm(a) for a in spec.aliases]
    for key in keys:
        owner = _LOOKUP.get(key)
        if owner is not None and owner != name and not replace:
            raise ValidationError(
                f"experiment name/alias {key!r} is already registered "
                f"(by {owner!r}); pass replace=True to override"
            )
    if name in _REGISTRY and not replace:
        raise ValidationError(
            f"experiment {name!r} is already registered; "
            "pass replace=True to override"
        )
    # evict the current owner of every colliding key (see the protocol
    # registry: a replacing spec must never orphan another spec)
    for key in keys:
        unregister_experiment(key, missing_ok=True)
    _REGISTRY[name] = spec
    for key in keys:
        _LOOKUP[key] = name
    return spec


def unregister_experiment(name: str, missing_ok: bool = False) -> None:
    """Remove an experiment and all its aliases (mainly for tests/plugins)."""
    canonical = _LOOKUP.get(_norm(name))
    if canonical is None:
        if missing_ok:
            return
        raise UnknownExperimentError(f"unknown experiment {name!r}")
    _REGISTRY.pop(canonical, None)
    for key in [k for k, v in _LOOKUP.items() if v == canonical]:
        del _LOOKUP[key]


def resolve_experiment(
    experiment: Union[str, ExperimentSpec],
) -> ExperimentSpec:
    """Resolve a name or alias (case/underscore-insensitive) to its spec.

    Unknown names raise :class:`~repro.errors.UnknownExperimentError`
    with the closest registered match as a "did you mean?" suggestion —
    the same error shape as the protocol registry's.
    """
    if isinstance(experiment, ExperimentSpec):
        return experiment
    key = _norm(experiment)
    if key not in _LOOKUP:
        discover_plugins()
    canonical = _LOOKUP.get(key)
    if canonical is None:
        suggestion, hint = did_you_mean(key, _LOOKUP)
        raise UnknownExperimentError(
            f"unknown experiment {experiment!r}; choose from "
            + ", ".join(experiment_names())
            + hint,
            suggestion=suggestion,
        )
    return _REGISTRY[canonical]


def experiment_names(simulated: Optional[bool] = None) -> Tuple[str, ...]:
    """Canonical names of registered experiments, in registration order.

    Args:
        simulated: filter on the spec's ``simulated`` flag (None = all).
    """
    discover_plugins()
    return tuple(
        name
        for name, spec in _REGISTRY.items()
        if simulated is None or spec.simulated == simulated
    )


def experiment_specs() -> List[ExperimentSpec]:
    """All registered specs, in registration order."""
    discover_plugins()
    return list(_REGISTRY.values())


def run_experiment(
    experiment: Union[str, ExperimentSpec],
    scale: Optional[ExperimentScale] = None,
    params: Optional[Union[object, Dict[str, Any]]] = None,
    campaign: Optional[Campaign] = None,
) -> ResultSet:
    """Run one registered experiment end to end.

    The uniform execution path behind ``repro experiments run``, the
    legacy per-figure CLI commands and :func:`repro.api.run_experiment`:
    resolve the spec, materialise its typed params, ``build`` the trial
    specs, execute them through the campaign (serially by default;
    parallel and cached when the campaign says so) and ``aggregate``
    into a provenance-stamped :class:`~repro.results.ResultSet`.
    """
    return resolve_experiment(experiment).run(
        scale=scale, params=params, campaign=campaign
    )


# -- plugin discovery -----------------------------------------------------------------


def _register_plugin_object(obj: Any, source: str) -> List[str]:
    """Register whatever a plugin hook produced; returns new names."""
    if callable(obj) and not isinstance(obj, ExperimentSpec):
        obj = obj()
    specs = list(obj) if isinstance(obj, (list, tuple)) else [obj]
    registered = []
    for spec in specs:
        if not isinstance(spec, ExperimentSpec):
            raise ValidationError(
                f"plugin {source} produced {type(spec).__name__}, "
                "expected ExperimentSpec"
            )
        if _norm(spec.name) in _LOOKUP:
            continue  # already present (built-in or earlier plugin) — keep it
        register_experiment(spec)
        registered.append(spec.name)
    return registered


def discover_plugins(force: bool = False) -> List[str]:
    """Load third-party experiment specs; returns newly registered names.

    Sources, in order: installed-package entry points in the
    ``repro.experiments`` group, then the ``REPRO_EXPERIMENTS``
    environment variable (``module:attr`` items, comma-separated).
    Discovery is lazy and runs once per process; a broken plugin is
    skipped with a warning rather than taking the registry down.
    """
    global _plugins_loaded
    if _plugins_loaded and not force:
        return []
    _plugins_loaded = True
    registered = load_entry_point_plugins(
        ENTRY_POINT_GROUP, _register_plugin_object, kind="experiment"
    )
    registered += load_env_plugins(
        os.environ.get(PLUGIN_ENV, ""),
        PLUGIN_ENV,
        _register_plugin_object,
        kind="experiment",
    )
    return registered


# -- built-in experiment hooks --------------------------------------------------------


def _sized_scale(
    scale: ExperimentScale,
    params: object,
    trials_in_scale: bool,
) -> ExperimentScale:
    """Apply the shared n / connectivity / trials axes to the scale.

    Mirrors the legacy ``repro campaign`` sweep semantics exactly: ``n``
    replaces the system size first, swept connectivities must fit below
    the (possibly overridden) ``n`` — an explicitly requested value must
    never be silently dropped by the builders' ``connectivity < n`` grid
    filter — and ``trials`` lands in the scale only for the experiments
    that read ``scale.trials`` (Figures 4 and the heterogeneous study;
    the convergence experiments take trials as an explicit argument).
    """
    n = getattr(params, "n", None)
    if n is not None:
        scale = scaled(scale, n=int(n))
    connectivity = getattr(params, "connectivity", None)
    if connectivity:
        bad = [k for k in connectivity if k >= scale.n]
        if bad:
            raise ValidationError(
                f"swept connectivity values {bad} must be below n={scale.n} "
                "(sweep n=... too, or pick smaller values)"
            )
        scale = scaled(scale, connectivities=tuple(connectivity))
    trials = getattr(params, "trials", None)
    if trials_in_scale and trials is not None:
        scale = scaled(scale, trials=int(trials))
    return scale


def _figure1_build(ctx: ExperimentContext) -> List[TrialSpec]:
    from repro.experiments.figure1 import PAPER_ALPHAS, PAPER_LOSSES, figure1_build

    p: Figure1Params = ctx.params
    return figure1_build(
        losses=p.loss or PAPER_LOSSES, alphas=p.alpha or PAPER_ALPHAS
    )


def _figure1_aggregate(
    ctx: ExperimentContext, results: Sequence[TrialResult]
) -> ResultSet:
    from repro.experiments.figure1 import (
        PAPER_ALPHAS,
        PAPER_LOSSES,
        figure1_aggregate,
    )

    p: Figure1Params = ctx.params
    table = figure1_aggregate(
        results, losses=p.loss or PAPER_LOSSES, alphas=p.alpha or PAPER_ALPHAS
    )
    return ResultSet.from_table("figure1", table)


def _table1_build(ctx: ExperimentContext) -> List[TrialSpec]:
    from repro.experiments.table1 import table1_build

    p: Table1Params = ctx.params
    return table1_build(p.intervals if p.intervals is not None else 5)


def _table1_aggregate(
    ctx: ExperimentContext, results: Sequence[TrialResult]
) -> ResultSet:
    from repro.experiments.table1 import (
        TABLE1_HEADERS,
        TABLE1_TITLE,
        table1_aggregate,
    )

    p: Table1Params = ctx.params
    intervals = p.intervals if p.intervals is not None else 5
    rows = table1_aggregate(results, intervals)
    return ResultSet.from_rows(
        "table1", TABLE1_TITLE, TABLE1_HEADERS, [list(r) for r in rows]
    )


def _figure4_hooks(name: str, variant: str) -> Tuple[BuildHook, AggregateHook]:
    def build(ctx: ExperimentContext) -> List[TrialSpec]:
        from repro.experiments.figure4 import figure4_build

        scale = _sized_scale(ctx.scale, ctx.params, trials_in_scale=True)
        values = getattr(ctx.params, variant)
        return figure4_build(variant, scale, ctx.campaign, values=values)

    def aggregate(
        ctx: ExperimentContext, results: Sequence[TrialResult]
    ) -> ResultSet:
        from repro.experiments.figure4 import figure4_aggregate

        scale = _sized_scale(ctx.scale, ctx.params, trials_in_scale=True)
        values = getattr(ctx.params, variant)
        table = figure4_aggregate(variant, scale, results, values=values)
        return ResultSet.from_table(name, table)

    return build, aggregate


def _figure5_hooks(name: str, variant: str) -> Tuple[BuildHook, AggregateHook]:
    def build(ctx: ExperimentContext) -> List[TrialSpec]:
        from repro.experiments.figure5 import figure5_build

        scale = _sized_scale(ctx.scale, ctx.params, trials_in_scale=False)
        values = getattr(ctx.params, variant)
        return figure5_build(
            variant, scale, values=values, trials=ctx.params.trials
        )

    def aggregate(
        ctx: ExperimentContext, results: Sequence[TrialResult]
    ) -> ResultSet:
        from repro.experiments.figure5 import figure5_aggregate

        scale = _sized_scale(ctx.scale, ctx.params, trials_in_scale=False)
        values = getattr(ctx.params, variant)
        table = figure5_aggregate(
            variant, scale, results, values=values, trials=ctx.params.trials
        )
        return ResultSet.from_table(name, table)

    return build, aggregate


def _figure6_build(ctx: ExperimentContext) -> List[TrialSpec]:
    from repro.experiments.figure6 import figure6_build

    p: Figure6Params = ctx.params
    return figure6_build(
        ctx.scale,
        sizes=p.size,
        trials=p.trials,
        topologies=p.topology,
        losses=p.loss,
    )


def _figure6_aggregate(
    ctx: ExperimentContext, results: Sequence[TrialResult]
) -> ResultSet:
    from repro.experiments.figure6 import figure6_aggregate

    p: Figure6Params = ctx.params
    table = figure6_aggregate(
        ctx.scale,
        results,
        sizes=p.size,
        trials=p.trials,
        topologies=p.topology,
        losses=p.loss,
    )
    return ResultSet.from_table("figure6", table)


def _membership_build(ctx: ExperimentContext) -> List[TrialSpec]:
    from repro.experiments.membership import membership_build

    return membership_build(ctx.scale, ctx.params)


def _membership_aggregate(
    ctx: ExperimentContext, results: Sequence[TrialResult]
) -> ResultSet:
    from repro.experiments.membership import membership_aggregate

    return membership_aggregate(ctx.scale, ctx.params, results)


def _kvstore_build(ctx: ExperimentContext) -> List[TrialSpec]:
    from repro.experiments.kvstore import kvstore_build

    return kvstore_build(ctx.scale, ctx.params)


def _kvstore_aggregate(
    ctx: ExperimentContext, results: Sequence[TrialResult]
) -> ResultSet:
    from repro.experiments.kvstore import kvstore_aggregate

    return kvstore_aggregate(ctx.scale, ctx.params, results)


def _heterogeneous_build(ctx: ExperimentContext) -> List[TrialSpec]:
    from repro.experiments.heterogeneous import heterogeneity_build

    p: HeterogeneousParams = ctx.params
    scale = _sized_scale(ctx.scale, p, trials_in_scale=True)
    return heterogeneity_build(
        scale,
        ctx.campaign,
        mean_loss=p.loss if p.loss is not None else 0.05,
        connectivities=p.connectivity,
    )


def _heterogeneous_aggregate(
    ctx: ExperimentContext, results: Sequence[TrialResult]
) -> ResultSet:
    from repro.experiments.heterogeneous import heterogeneity_aggregate

    p: HeterogeneousParams = ctx.params
    scale = _sized_scale(ctx.scale, p, trials_in_scale=True)
    table = heterogeneity_aggregate(
        scale,
        results,
        mean_loss=p.loss if p.loss is not None else 0.05,
        connectivities=p.connectivity,
    )
    return ResultSet.from_table("heterogeneous", table)


# -- built-in registrations -----------------------------------------------------------

register_experiment(
    ExperimentSpec(
        name="figure1",
        description="two-path adaptive/gossip ratio (analytic, exact)",
        artefact="Figure 1",
        aliases=("fig1",),
        params_type=Figure1Params,
        simulated=False,
        build=_figure1_build,
        aggregate=_figure1_aggregate,
    )
)
register_experiment(
    ExperimentSpec(
        name="table1",
        description="Bayesian belief adaptation (exact)",
        artefact="Table 1",
        aliases=("tab1",),
        params_type=Table1Params,
        simulated=False,
        build=_table1_build,
        aggregate=_table1_aggregate,
    )
)
_f4a_build, _f4a_aggregate = _figure4_hooks("figure4a", "crash")
register_experiment(
    ExperimentSpec(
        name="figure4a",
        description="reference/optimal message ratio, crashes (simulated)",
        artefact="Figure 4(a)",
        aliases=("fig4a",),
        params_type=Figure4aParams,
        build=_f4a_build,
        aggregate=_f4a_aggregate,
    )
)
_f4b_build, _f4b_aggregate = _figure4_hooks("figure4b", "loss")
register_experiment(
    ExperimentSpec(
        name="figure4b",
        description="reference/optimal message ratio, losses (simulated)",
        artefact="Figure 4(b)",
        aliases=("fig4b",),
        params_type=Figure4bParams,
        build=_f4b_build,
        aggregate=_f4b_aggregate,
    )
)
_f5a_build, _f5a_aggregate = _figure5_hooks("figure5a", "crash")
register_experiment(
    ExperimentSpec(
        name="figure5a",
        description="convergence effort, crashes (simulated)",
        artefact="Figure 5(a)",
        aliases=("fig5a",),
        params_type=Figure5aParams,
        build=_f5a_build,
        aggregate=_f5a_aggregate,
    )
)
_f5b_build, _f5b_aggregate = _figure5_hooks("figure5b", "loss")
register_experiment(
    ExperimentSpec(
        name="figure5b",
        description="convergence effort, losses (simulated)",
        artefact="Figure 5(b)",
        aliases=("fig5b",),
        params_type=Figure5bParams,
        build=_f5b_build,
        aggregate=_f5b_aggregate,
    )
)
register_experiment(
    ExperimentSpec(
        name="figure6",
        description="scalability: ring vs random tree (simulated)",
        artefact="Figure 6",
        aliases=("fig6",),
        params_type=Figure6Params,
        build=_figure6_build,
        aggregate=_figure6_aggregate,
    )
)
register_experiment(
    ExperimentSpec(
        name="membership",
        description="partial-view quality: policy triples x view sizes (simulated)",
        artefact="Membership study",
        aliases=("peer-sampling", "pv"),
        params_type=MembershipExperimentParams,
        build=_membership_build,
        aggregate=_membership_aggregate,
    )
)
register_experiment(
    ExperimentSpec(
        name="kvstore",
        description="causal KV store: protocols x workload mixes (simulated)",
        artefact="KV application study",
        aliases=("kv", "kv-store"),
        params_type=KVExperimentParams,
        build=_kvstore_build,
        aggregate=_kvstore_aggregate,
    )
)
register_experiment(
    ExperimentSpec(
        name="heterogeneous",
        description="extension: uniform vs heterogeneous environments",
        artefact="Section 7 extension",
        aliases=("hetero", "het"),
        params_type=HeterogeneousParams,
        build=_heterogeneous_build,
        aggregate=_heterogeneous_aggregate,
    )
)
