"""Result persistence and report rendering for benchmark runs."""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.util.tables import SeriesTable


@dataclass
class ExperimentRecord:
    """One regenerated experiment, ready to be written to a report.

    ``metadata`` carries provenance that is not part of the figure data
    itself — campaign runs record worker count, trials executed and cache
    hits there so a report shows how much work a re-run actually cost.
    """

    experiment_id: str
    description: str
    scale: str
    table: SeriesTable
    notes: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_result_set(
        cls,
        result,
        spec,
        metadata: Optional[Dict[str, object]] = None,
    ) -> "ExperimentRecord":
        """Build a record from a registry run's typed ResultSet.

        Provenance rides along in ``metadata`` so the written JSON
        artefact records how the numbers were produced; explicit
        ``metadata`` entries (campaign counters, sweeps) are merged in
        on top.
        """
        merged: Dict[str, object] = {}
        if result.provenance is not None:
            merged["provenance"] = result.provenance.to_json()
        if result.run_id:
            merged["run_id"] = result.run_id
        merged.update(metadata or {})
        prov = result.provenance
        return cls(
            experiment_id=result.experiment,
            description=spec.description,
            scale=prov.scale if prov is not None else "",
            table=result.to_table(),
            metadata=merged,
        )

    def render(self) -> str:
        header = (
            f"=== {self.experiment_id} — {self.description} "
            f"(scale: {self.scale}) ==="
        )
        parts = [header, self.table.render()]
        if self.notes:
            parts.append(f"notes: {self.notes}")
        if self.metadata:
            detail = ", ".join(f"{k}={v}" for k, v in self.metadata.items())
            parts.append(f"run: {detail}")
        return "\n".join(parts)

    def to_json(self) -> Dict:
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "scale": self.scale,
            "notes": self.notes,
            "metadata": dict(self.metadata),
            "x_label": self.table.x_label,
            "series": [
                {"name": s.name, "xs": s.xs, "ys": s.ys}
                for s in self.table.series
            ],
        }


class ReportWriter:
    """Accumulates experiment records and writes a combined report.

    Benches use this (via the shared ``report_dir`` fixture) so a full
    ``pytest benchmarks/ --benchmark-only`` run leaves both human-readable
    and JSON artefacts under ``benchmarks/results/``.
    """

    def __init__(self, directory: str) -> None:
        self._dir = directory
        os.makedirs(directory, exist_ok=True)
        self._records: List[ExperimentRecord] = []

    def add(self, record: ExperimentRecord) -> None:
        self._records.append(record)
        base = record.experiment_id.replace(" ", "_").lower()
        with open(os.path.join(self._dir, f"{base}.txt"), "w") as fh:
            fh.write(record.render() + "\n")
        with open(os.path.join(self._dir, f"{base}.json"), "w") as fh:
            json.dump(record.to_json(), fh, indent=2)

    def render_all(self) -> str:
        # report banners are presentation-only and never feed trial state
        # or result digests, so a wall-clock stamp here is legitimate
        stamp = time.strftime("%Y-%m-%d %H:%M:%S")  # repro: noqa-det[D001]
        parts = [f"repro experiment report — {stamp}"]
        parts += [r.render() for r in self._records]
        return "\n\n".join(parts)
