"""Result persistence and report rendering for benchmark runs."""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.util.tables import SeriesTable


@dataclass
class ExperimentRecord:
    """One regenerated experiment, ready to be written to a report."""

    experiment_id: str
    description: str
    scale: str
    table: SeriesTable
    notes: str = ""

    def render(self) -> str:
        header = (
            f"=== {self.experiment_id} — {self.description} "
            f"(scale: {self.scale}) ==="
        )
        parts = [header, self.table.render()]
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)

    def to_json(self) -> Dict:
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "scale": self.scale,
            "notes": self.notes,
            "x_label": self.table.x_label,
            "series": [
                {"name": s.name, "xs": s.xs, "ys": s.ys}
                for s in self.table.series
            ],
        }


class ReportWriter:
    """Accumulates experiment records and writes a combined report.

    Benches use this (via the shared ``report_dir`` fixture) so a full
    ``pytest benchmarks/ --benchmark-only`` run leaves both human-readable
    and JSON artefacts under ``benchmarks/results/``.
    """

    def __init__(self, directory: str) -> None:
        self._dir = directory
        os.makedirs(directory, exist_ok=True)
        self._records: List[ExperimentRecord] = []

    def add(self, record: ExperimentRecord) -> None:
        self._records.append(record)
        base = record.experiment_id.replace(" ", "_").lower()
        with open(os.path.join(self._dir, f"{base}.txt"), "w") as fh:
            fh.write(record.render() + "\n")
        with open(os.path.join(self._dir, f"{base}.json"), "w") as fh:
            json.dump(record.to_json(), fh, indent=2)

    def render_all(self) -> str:
        stamp = time.strftime("%Y-%m-%d %H:%M:%S")
        parts = [f"repro experiment report — {stamp}"]
        parts += [r.render() for r in self._records]
        return "\n\n".join(parts)
