"""Parallel, cached, resumable execution of experiment trial sweeps.

The figure experiments all reduce to the same shape of work: a grid of
*points* (connectivity x probability x topology ...), each point needing
several independently seeded simulation trials, aggregated with
:class:`repro.util.stats.OnlineStats`.  The seed runner executed that
grid strictly serially; this module fans it out across worker processes
while keeping the results **bit-identical** to serial execution:

* every trial is described by a :class:`TrialSpec` — a pure function
  (named ``"package.module:function"``) plus JSON-able keyword
  parameters that fully determine its :class:`~repro.util.rng.RandomSource`
  substream, so a trial computes the same floats no matter which process
  (or machine) runs it;
* the campaign collects results *in submission order* and the callers
  fold them into ``OnlineStats`` in that same order, so aggregate means
  are exactly — not just statistically — equal to the serial runner's;
* completed trials are persisted in a :class:`~repro.util.cache.TrialCache`
  keyed by the spec's content hash, so re-runs and interrupted campaigns
  resume for free (only never-finished trials execute).

Workers use the ``spawn`` start method: child processes re-import the
experiment modules and resolve the trial function by name, so no live
simulator state ever crosses a process boundary.
"""

from __future__ import annotations

import importlib
import multiprocessing
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ValidationError
from repro.util.cache import TrialCache, content_key
from repro.util.rng import DrawLedger, ledger_scope
from repro.util.stats import OnlineStats

#: Reserved result-key prefix carrying per-stream RNG draw counts from a
#: ledgered trial back to the parent (stripped before aggregation).
RNG_KEY_PREFIX = "rng."

#: Result type every trial function must return.
TrialResult = Dict[str, float]

SweepValue = Union[int, float, str]


@dataclass(frozen=True)
class TrialSpec:
    """One unit of campaign work: a named pure function plus parameters.

    Attributes:
        fn: import path of the trial function, ``"package.module:function"``.
            The function must be importable by worker processes and return
            a flat ``{metric: float}`` dict.
        params: keyword arguments as a sorted tuple of ``(name, value)``
            pairs (kept hashable so specs can be deduplicated).  Values
            must be JSON-able scalars — they form the cache key.
    """

    fn: str
    params: Tuple[Tuple[str, object], ...]

    @classmethod
    def make(cls, fn: str, **params: object) -> "TrialSpec":
        """Build a spec, validating the function path and parameters."""
        if ":" not in fn:
            raise ValidationError(
                f"trial fn must be 'module:function', got {fn!r}"
            )
        for name, value in params.items():
            if isinstance(value, bool) or value is None:
                continue
            if not isinstance(value, (int, float, str)):
                raise ValidationError(
                    f"trial param {name}={value!r} is not a JSON-able scalar"
                )
            if isinstance(value, float) and value != value:
                raise ValidationError(f"trial param {name} is NaN")
        return cls(fn=fn, params=tuple(sorted(params.items())))

    def kwargs(self) -> Dict[str, object]:
        """The parameters as a plain keyword-argument dict."""
        return dict(self.params)

    def key(self) -> str:
        """Stable content hash identifying this trial (the cache key).

        The package version is folded into the hash so a warm cache
        never serves results produced by older simulation code.
        """
        from repro import __version__  # deferred: package init imports us

        return content_key(
            {"fn": self.fn, "params": self.kwargs(), "code": __version__}
        )

    def resolve(self) -> Callable[..., TrialResult]:
        """Import and return the trial function."""
        module_name, _, attr = self.fn.partition(":")
        module = importlib.import_module(module_name)
        try:
            fn = getattr(module, attr)
        except AttributeError:
            raise ValidationError(
                f"module {module_name!r} has no trial function {attr!r}"
            ) from None
        return fn

    def describe(self) -> str:
        short = self.fn.rsplit(".", 1)[-1]
        args = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{short}({args})"


def execute_spec(spec: TrialSpec) -> TrialResult:
    """Run one trial in the current process (also the pool worker body).

    The reserved ``rng_ledger`` parameter never reaches the trial
    function: when present and true, the trial runs inside a
    :func:`~repro.util.rng.ledger_scope` and its per-stream draw counts
    ride back in ``rng.<stream>`` result keys (so they travel through
    the cache and worker pipes like any other metric).  Ledger
    bookkeeping draws nothing itself, so metric values are bit-identical
    either way — only the cache key differs.
    """
    kwargs = spec.kwargs()
    want_ledger = bool(kwargs.pop("rng_ledger", False))
    fn = spec.resolve()
    ledger = DrawLedger()
    if want_ledger:
        with ledger_scope(ledger):
            result = fn(**kwargs)
    else:
        result = fn(**kwargs)
    if not isinstance(result, dict):
        raise ValidationError(
            f"trial {spec.describe()} returned {type(result).__name__}, "
            "expected a dict of floats"
        )
    out = {name: float(value) for name, value in result.items()}
    if want_ledger:
        for stream, draws in ledger.as_dict().items():
            out[RNG_KEY_PREFIX + stream] = float(draws)
    return out


def _execute_keyed(spec: TrialSpec) -> Tuple[TrialSpec, TrialResult]:
    """Pool worker body: tag the result with its spec for unordered reads."""
    return spec, execute_spec(spec)


def chunked(results: Sequence[TrialResult], size: int):
    """Slice ordered campaign results into consecutive per-point chunks."""
    for start in range(0, len(results), size):
        yield results[start : start + size]


class Campaign:
    """Executes batches of :class:`TrialSpec` with caching and workers.

    Args:
        workers: worker process count; ``1`` (the default) runs every
            trial in-process, which is what the plain figure CLI uses.
        cache: optional :class:`TrialCache`; when set, completed trials
            are persisted and later batches skip anything already on
            disk.  Cache writes happen in the parent as results arrive,
            so an interrupted campaign keeps everything that finished.
        rng_ledger: when true, every trial runs with an active
            :class:`~repro.util.rng.DrawLedger`; per-stream draw counts
            accumulate into :attr:`rng_draws` (summed over executed and
            cache-recovered trials alike) for provenance.  Ledgered
            trials cache under distinct content keys, so default runs
            stay byte-identical to a build without the ledger.

    The cumulative counters :attr:`executed` and :attr:`cached` track how
    much work the campaign actually did versus recovered from disk.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[TrialCache] = None,
        rng_ledger: bool = False,
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        self.rng_ledger = rng_ledger
        self.executed = 0
        self.cached = 0
        self.rng_draws: Dict[str, int] = {}

    def run(self, specs: Sequence[TrialSpec]) -> List[TrialResult]:
        """Execute ``specs``; returns their results in submission order.

        Duplicate specs (same content key) execute once.  With a cache,
        hits are returned without executing; every fresh result is
        persisted the moment it arrives, so a crash or Ctrl-C part-way
        through loses only the in-flight trials.
        """
        if self.rng_ledger:
            specs = [
                TrialSpec.make(
                    spec.fn, **{**spec.kwargs(), "rng_ledger": True}
                )
                for spec in specs
            ]
        order: List[str] = []
        pending: List[TrialSpec] = []
        pending_keys: set = set()
        results: Dict[str, TrialResult] = {}
        for spec in specs:
            key = spec.key()
            order.append(key)
            if key in results or key in pending_keys:
                continue
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                results[key] = hit
                self.cached += 1
            else:
                pending.append(spec)
                pending_keys.add(key)

        for spec, result in self._execute(pending):
            key = spec.key()
            results[key] = result
            self.executed += 1
            if self.cache is not None:
                self.cache.put(
                    key,
                    result,
                    context={"fn": spec.fn, "params": spec.kwargs()},
                )
        if self.rng_ledger:
            # fold draw counts once per distinct trial (dedup-safe) and
            # hand callers metric-only dicts, so aggregation never sees
            # the rng.* bookkeeping keys
            for result in results.values():
                for name, value in result.items():
                    if name.startswith(RNG_KEY_PREFIX):
                        stream = name[len(RNG_KEY_PREFIX) :]
                        self.rng_draws[stream] = (
                            self.rng_draws.get(stream, 0) + int(value)
                        )
            return [
                {
                    name: value
                    for name, value in results[key].items()
                    if not name.startswith(RNG_KEY_PREFIX)
                }
                for key in order
            ]
        return [results[key] for key in order]

    def _execute(self, pending: Sequence[TrialSpec]):
        """Yield ``(spec, result)`` pairs as they complete.

        Serial execution yields in submission order; parallel execution
        yields in *completion* order (``imap_unordered``) so every
        finished trial reaches the cache immediately instead of queueing
        behind a slow sibling — :meth:`run` reorders by content key.
        """
        if not pending:
            return
        if self.workers == 1 or len(pending) == 1:
            for spec in pending:
                yield spec, execute_spec(spec)
            return
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes=min(self.workers, len(pending))) as pool:
            yield from pool.imap_unordered(_execute_keyed, pending, chunksize=1)

    # -- aggregation ---------------------------------------------------------------

    @staticmethod
    def aggregate(
        results: Sequence[TrialResult], metric: str
    ) -> OnlineStats:
        """Fold one metric of ordered trial results into OnlineStats.

        Folding happens in sequence order, so the mean is exactly the
        value a serial loop over the same trials would have produced.
        """
        stats = OnlineStats()
        for result in results:
            stats.add(result[metric])
        return stats


# -- sweep specification ------------------------------------------------------------


def parse_sweep(text: str) -> Tuple[str, List[SweepValue]]:
    """Parse one ``--sweep`` argument: ``"key=v1,v2,..."``.

    Values are coerced to int when they look like ints, float when they
    look like floats, and kept as strings otherwise (topology names).
    """
    key, sep, rest = text.partition("=")
    key = key.strip()
    if not sep or not key or not rest.strip():
        raise ValidationError(
            f"sweep spec must look like 'key=v1,v2,...', got {text!r}"
        )
    values: List[SweepValue] = []
    for raw in rest.split(","):
        raw = raw.strip()
        if not raw:
            continue
        try:
            values.append(int(raw))
            continue
        except ValueError:
            pass
        try:
            values.append(float(raw))
            continue
        except ValueError:
            pass
        values.append(raw)
    if not values:
        raise ValidationError(f"sweep spec {text!r} has no values")
    return key, values


def parse_sweeps(texts: Sequence[str]) -> Dict[str, List[SweepValue]]:
    """Parse repeated ``--sweep`` arguments into an ordered mapping."""
    sweeps: Dict[str, List[SweepValue]] = {}
    for text in texts:
        key, values = parse_sweep(text)
        if key in sweeps:
            raise ValidationError(f"duplicate sweep key {key!r}")
        sweeps[key] = values
    return sweeps
