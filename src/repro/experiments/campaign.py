"""Parallel, cached, resumable execution of experiment trial sweeps.

The figure experiments all reduce to the same shape of work: a grid of
*points* (connectivity x probability x topology ...), each point needing
several independently seeded simulation trials, aggregated with
:class:`repro.util.stats.OnlineStats`.  The seed runner executed that
grid strictly serially; this module fans it out across execution
backends while keeping the results **bit-identical** to serial
execution:

* every trial is described by a :class:`TrialSpec` — a pure function
  (named ``"package.module:function"``) plus JSON-able keyword
  parameters that fully determine its :class:`~repro.util.rng.RandomSource`
  substream, so a trial computes the same floats no matter which process
  (or machine) runs it;
* the campaign collects results *in submission order* and the callers
  fold them into ``OnlineStats`` in that same order, so aggregate means
  are exactly — not just statistically — equal to the serial runner's;
* completed trials are persisted in a :class:`~repro.util.cache.TrialCache`
  keyed by the spec's content hash, so re-runs and interrupted campaigns
  resume for free (only never-finished trials execute).

*How* trials execute is delegated to a pluggable
:class:`~repro.exec.ExecutionBackend` (in-process serial, spawn-context
process pool, or a work-stealing shard queue with simulated worker
loss — see :mod:`repro.exec`).  Out-of-process workers re-import the
experiment modules and resolve the trial function by name, so no live
simulator state ever crosses a process boundary.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ValidationError
from repro.util.cache import TrialCache, content_key
from repro.util.rng import DrawLedger, ledger_scope
from repro.util.stats import OnlineStats

if TYPE_CHECKING:  # import cycle: repro.exec imports trial types from here
    from repro.exec import ExecutionBackend

#: Reserved result-key prefix carrying per-stream RNG draw counts from a
#: ledgered trial back to the parent (stripped before aggregation).
RNG_KEY_PREFIX = "rng."

#: Result type every trial function must return.
TrialResult = Dict[str, float]

SweepValue = Union[int, float, str]


@dataclass(frozen=True)
class TrialSpec:
    """One unit of campaign work: a named pure function plus parameters.

    Attributes:
        fn: import path of the trial function, ``"package.module:function"``.
            The function must be importable by worker processes and return
            a flat ``{metric: float}`` dict.
        params: keyword arguments as a sorted tuple of ``(name, value)``
            pairs (kept hashable so specs can be deduplicated).  Values
            must be JSON-able scalars — they form the cache key.
    """

    fn: str
    params: Tuple[Tuple[str, object], ...]

    @classmethod
    def make(cls, fn: str, **params: object) -> "TrialSpec":
        """Build a spec, validating the function path and parameters."""
        if ":" not in fn:
            raise ValidationError(
                f"trial fn must be 'module:function', got {fn!r}"
            )
        for name, value in params.items():
            if isinstance(value, bool) or value is None:
                continue
            if not isinstance(value, (int, float, str)):
                raise ValidationError(
                    f"trial param {name}={value!r} is not a JSON-able scalar"
                )
            if isinstance(value, float) and value != value:
                raise ValidationError(f"trial param {name} is NaN")
        return cls(fn=fn, params=tuple(sorted(params.items())))

    def kwargs(self) -> Dict[str, object]:
        """The parameters as a plain keyword-argument dict."""
        return dict(self.params)

    def key(self) -> str:
        """Stable content hash identifying this trial (the cache key).

        The package version is folded into the hash so a warm cache
        never serves results produced by older simulation code.
        """
        from repro import __version__  # deferred: package init imports us

        return content_key(
            {"fn": self.fn, "params": self.kwargs(), "code": __version__}
        )

    def resolve(self) -> Callable[..., TrialResult]:
        """Import and return the trial function."""
        module_name, _, attr = self.fn.partition(":")
        module = importlib.import_module(module_name)
        try:
            fn = getattr(module, attr)
        except AttributeError:
            raise ValidationError(
                f"module {module_name!r} has no trial function {attr!r}"
            ) from None
        return fn

    def describe(self) -> str:
        short = self.fn.rsplit(".", 1)[-1]
        args = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{short}({args})"


def execute_spec(spec: TrialSpec) -> TrialResult:
    """Run one trial in the current process (also the pool worker body).

    The reserved ``rng_ledger`` parameter never reaches the trial
    function: when present and true, the trial runs inside a
    :func:`~repro.util.rng.ledger_scope` and its per-stream draw counts
    ride back in ``rng.<stream>`` result keys (so they travel through
    the cache and worker pipes like any other metric).  Ledger
    bookkeeping draws nothing itself, so metric values are bit-identical
    either way — only the cache key differs.
    """
    kwargs = spec.kwargs()
    want_ledger = bool(kwargs.pop("rng_ledger", False))
    fn = spec.resolve()
    ledger = DrawLedger()
    if want_ledger:
        with ledger_scope(ledger):
            result = fn(**kwargs)
    else:
        result = fn(**kwargs)
    if not isinstance(result, dict):
        raise ValidationError(
            f"trial {spec.describe()} returned {type(result).__name__}, "
            "expected a dict of floats"
        )
    out = {name: float(value) for name, value in result.items()}
    if want_ledger:
        for stream, draws in ledger.as_dict().items():
            out[RNG_KEY_PREFIX + stream] = float(draws)
    return out


def _execute_keyed(spec: TrialSpec) -> Tuple[TrialSpec, TrialResult]:
    """Pool worker body: tag the result with its spec for unordered reads."""
    return spec, execute_spec(spec)


def chunked(results: Sequence[TrialResult], size: int):
    """Slice ordered campaign results into consecutive per-point chunks."""
    for start in range(0, len(results), size):
        yield results[start : start + size]


class Campaign:
    """Executes batches of :class:`TrialSpec` with caching and a backend.

    Args:
        workers: deprecated-but-supported worker process count; ``1``
            maps to the serial backend and ``N > 1`` to a process pool.
            Mutually exclusive with ``backend``.
        cache: optional :class:`TrialCache`; when set, completed trials
            are persisted and later batches skip anything already on
            disk.  Cache writes happen in the parent as results arrive,
            so an interrupted campaign keeps everything that finished.
            The cache is also wired into the backend so out-of-process
            workers share it.
        rng_ledger: when true, every trial runs with an active
            :class:`~repro.util.rng.DrawLedger`; per-stream draw counts
            accumulate into :attr:`rng_draws` (summed over executed and
            cache-recovered trials alike) for provenance.  Ledgered
            trials cache under distinct content keys, so default runs
            stay byte-identical to a build without the ledger.
        backend: an :class:`~repro.exec.ExecutionBackend` instance or a
            spec string (``"serial"``, ``"process:8"``, ``"shard:8"``);
            defaults to serial.

    The cumulative counters :attr:`executed` and :attr:`cached` track how
    much work the campaign actually did versus recovered from disk, and
    :attr:`peak_buffered` records the largest number of out-of-order
    results ever held back while restoring submission order.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[TrialCache] = None,
        rng_ledger: bool = False,
        backend: Union["str", "ExecutionBackend", None] = None,
    ) -> None:
        # deferred: repro.exec imports TrialSpec/execute_spec from here
        from repro.exec import (
            ProcessPoolBackend,
            SerialBackend,
            resolve_backend,
        )

        if backend is not None and workers is not None:
            raise ValidationError(
                "pass either workers= (deprecated) or backend=, not both"
            )
        if backend is None:
            count = 1 if workers is None else workers
            if count < 1:
                raise ValidationError(f"workers must be >= 1, got {count}")
            backend = (
                SerialBackend() if count == 1 else ProcessPoolBackend(count)
            )
        else:
            backend = resolve_backend(backend)
        if cache is not None:
            backend.cache = cache
        self.backend = backend
        self.workers = backend.workers
        self.cache = backend.cache
        self.rng_ledger = rng_ledger
        self.executed = 0
        self.cached = 0
        self.peak_buffered = 0
        self.rng_draws: Dict[str, int] = {}

    def run(self, specs: Sequence[TrialSpec]) -> List[TrialResult]:
        """Execute ``specs``; returns their results in submission order.

        A materialized :meth:`run_stream` — see there for semantics.
        """
        return list(self.run_stream(specs))

    def run_stream(self, specs: Sequence[TrialSpec]):
        """Execute ``specs``, yielding results in submission order.

        Duplicate specs (same content key) execute once.  With a cache,
        hits are returned without executing; every fresh result is
        persisted the moment it arrives, so a crash or Ctrl-C part-way
        through loses only the in-flight trials.

        Results are yielded *incrementally*: as the backend streams
        completions (in any order), each one is either yielded straight
        through or held in a small reorder buffer until every earlier
        spec has been satisfied.  Buffered entries are dropped as soon
        as their last duplicate is yielded and cache hits are re-read
        lazily at yield time, so peak memory is bounded by the
        out-of-orderness of the backend — not the campaign size.
        """
        if self.rng_ledger:
            specs = [
                TrialSpec.make(
                    spec.fn, **{**spec.kwargs(), "rng_ledger": True}
                )
                for spec in specs
            ]
        order: List[str] = []
        needs: Dict[str, int] = {}
        pending: List[TrialSpec] = []
        cached_keys: set = set()
        for spec in specs:
            key = spec.key()
            order.append(key)
            needs[key] = needs.get(key, 0) + 1
            if needs[key] > 1:
                continue
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                cached_keys.add(key)
                self.cached += 1
                self._fold_ledger(hit)
            else:
                pending.append(spec)

        buffer: Dict[str, TrialResult] = {}
        cursor = 0

        def take(key: str) -> TrialResult:
            needs[key] -= 1
            if key in buffer:
                result = buffer[key]
                if needs[key] == 0:
                    del buffer[key]
                return result
            result = self.cache.get(key) if self.cache is not None else None
            if result is None:
                raise ValidationError(
                    f"trial cache entry {key[:12]}... disappeared mid-run"
                )
            return result

        def strip(result: TrialResult) -> TrialResult:
            if not self.rng_ledger:
                return result
            return {
                name: value
                for name, value in result.items()
                if not name.startswith(RNG_KEY_PREFIX)
            }

        for spec, result in self.backend.submit(pending):
            key = spec.key()
            self.executed += 1
            if self.cache is not None:
                self.cache.put(
                    key,
                    result,
                    context={"fn": spec.fn, "params": spec.kwargs()},
                )
            self._fold_ledger(result)
            buffer[key] = result
            self.peak_buffered = max(self.peak_buffered, len(buffer))
            while cursor < len(order) and (
                order[cursor] in buffer or order[cursor] in cached_keys
            ):
                yield strip(take(order[cursor]))
                cursor += 1
        while cursor < len(order):
            key = order[cursor]
            if key not in buffer and key not in cached_keys:
                raise ValidationError(
                    f"backend {self.backend.describe()!r} never returned "
                    f"a result for trial {key[:12]}..."
                )
            yield strip(take(key))
            cursor += 1

    def _fold_ledger(self, result: TrialResult) -> None:
        """Accumulate one distinct trial's rng.* draw counts (ledgered runs)."""
        if not self.rng_ledger:
            return
        for name, value in result.items():
            if name.startswith(RNG_KEY_PREFIX):
                stream = name[len(RNG_KEY_PREFIX) :]
                self.rng_draws[stream] = (
                    self.rng_draws.get(stream, 0) + int(value)
                )

    def execution_record(self) -> Optional[Dict[str, object]]:
        """Backend execution provenance, or ``None`` for unsharded runs.

        Only sharded backends produce a record (shard ids, attempts,
        executed-vs-cached per shard), so serial and pool provenance
        JSON stays byte-identical to earlier builds.
        """
        records = self.backend.shard_records()
        if not records:
            return None
        return {
            "backend": self.backend.name,
            "workers": self.backend.workers,
            "shards": [record.to_json() for record in records],
        }

    # -- aggregation ---------------------------------------------------------------

    @staticmethod
    def aggregate(
        results: Sequence[TrialResult], metric: str
    ) -> OnlineStats:
        """Fold one metric of ordered trial results into OnlineStats.

        Folding happens in sequence order, so the mean is exactly the
        value a serial loop over the same trials would have produced.
        """
        stats = OnlineStats()
        for result in results:
            stats.add(result[metric])
        return stats


# -- sweep specification ------------------------------------------------------------


def parse_sweep(text: str) -> Tuple[str, List[SweepValue]]:
    """Parse one ``--sweep`` argument: ``"key=v1,v2,..."``.

    Values are coerced to int when they look like ints, float when they
    look like floats, and kept as strings otherwise (topology names).
    """
    key, sep, rest = text.partition("=")
    key = key.strip()
    if not sep or not key or not rest.strip():
        raise ValidationError(
            f"sweep spec must look like 'key=v1,v2,...', got {text!r}"
        )
    values: List[SweepValue] = []
    for raw in rest.split(","):
        raw = raw.strip()
        if not raw:
            continue
        try:
            values.append(int(raw))
            continue
        except ValueError:
            pass
        try:
            values.append(float(raw))
            continue
        except ValueError:
            pass
        values.append(raw)
    if not values:
        raise ValidationError(f"sweep spec {text!r} has no values")
    return key, values


def parse_sweeps(texts: Sequence[str]) -> Dict[str, List[SweepValue]]:
    """Parse repeated ``--sweep`` arguments into an ordered mapping."""
    sweeps: Dict[str, List[SweepValue]] = {}
    for text in texts:
        key, values = parse_sweep(text)
        if key in sweeps:
            raise ValidationError(f"duplicate sweep key {key!r}")
        sweeps[key] = values
    return sweeps
