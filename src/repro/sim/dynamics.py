"""Deterministic application of scenario timelines to a running network.

A *dynamics timeline* is a sequence of environment-change events (link
degradation, partitions, crash bursts, process churn, crash-model
toggles) stamped with absolute simulated times.  The
:class:`DynamicsDriver` schedules each event through the simulation
engine at :data:`~repro.sim.events.DYNAMICS_PRIORITY`, so at any instant
the environment changes *before* timers and deliveries run, and the
whole trial stays a pure function of its scalar seeds:

* events execute in ``(time, priority, insertion)`` order like every
  other callback — no wall clock, no hidden state;
* event *selections* (which links a brownout hits, which processes a
  crash burst fells) draw from a :class:`~repro.util.rng.RandomSource`
  child stream keyed only by the scenario name and the event's index in
  the timeline, so the same scenario always perturbs the same elements,
  in every trial and in every worker process;
* configuration changes compose as an *overlay* over the base
  configuration — each event edits the overlay and the driver installs
  ``base + overlay`` via :meth:`Network.replace_configuration`, so
  overlapping events (a partition during a brownout) resolve
  deterministically and a ``Heal`` restores the exact base environment.

The driver lives in the sim layer and knows nothing about scenario
schemas: events are any objects with an ``at`` attribute and an
``apply(driver)`` method (see :mod:`repro.scenario.schema` for the
declarative event types built on this contract).
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.errors import ValidationError
from repro.sim.events import DYNAMICS_PRIORITY
from repro.sim.network import Network
from repro.types import Link, ProcessId
from repro.util.rng import RandomSource

if TYPE_CHECKING:
    from repro.topology.configuration import Configuration


class DynamicsDriver:
    """Applies a timeline of environment events to a live :class:`Network`.

    Args:
        network: the network to perturb (its configuration at
            construction time becomes the *base* every restore returns
            to).
        timeline: event objects, each with an ``at`` time (>= 0) and an
            ``apply(driver)`` method.  Events are applied in ``at`` order
            (ties broken by timeline position).
        name: scenario label — the seed of the deterministic selection
            streams handed to events.
        tiers: optional named link groups (e.g. ``{"wan": [...],
            "lan": [...]}``) that events may select by name.

    Call :meth:`install` once (before or after ``network.start()``) to
    schedule the events; the engine then applies them at their times.
    """

    __slots__ = (
        "_network",
        "_base",
        "_base_options",
        "_graph",
        "_name",
        "_tiers",
        "_timeline",
        "_loss_overlay",
        "_crash_overlay",
        "_applied",
        "_installed",
        "_event_index",
    )

    def __init__(
        self,
        network: Network,
        timeline: Sequence[object],
        name: str = "scenario",
        tiers: Optional[Mapping[str, Sequence[Link]]] = None,
    ) -> None:
        self._network = network
        self._base = network.config
        self._base_options = network.options
        self._graph = network.graph
        self._name = name
        self._tiers: Dict[str, Tuple[Link, ...]] = {
            key: tuple(Link.of(*link) for link in links)
            for key, links in (tiers or {}).items()
        }
        for event in timeline:
            at = float(getattr(event, "at"))
            if at < 0.0:
                raise ValidationError(f"timeline event at t={at} is in the past")
        self._timeline: List[object] = sorted(
            timeline, key=lambda e: float(e.at)
        )
        self._loss_overlay: Dict[Link, float] = {}
        self._crash_overlay: Dict[ProcessId, float] = {}
        self._applied: List[Tuple[float, str]] = []
        self._installed = False

    # -- introspection -------------------------------------------------------------

    @property
    def network(self) -> Network:
        return self._network

    @property
    def base_configuration(self) -> "Configuration":
        """The configuration every :class:`Heal`-style restore returns to."""
        return self._base

    @property
    def applied_events(self) -> List[Tuple[float, str]]:
        """``(time, event class name)`` for every event applied so far."""
        return list(self._applied)

    @property
    def last_event_time(self) -> float:
        """The ``at`` of the final timeline event (0.0 for empty timelines)."""
        if not self._timeline:
            return 0.0
        return float(self._timeline[-1].at)

    # -- scheduling ----------------------------------------------------------------

    def install(self) -> None:
        """Schedule every timeline event on the network's simulator."""
        if self._installed:
            raise ValidationError("DynamicsDriver.install() called twice")
        self._installed = True
        for index, event in enumerate(self._timeline):
            self._network.sim.schedule_at(
                float(event.at),
                lambda e=event, i=index: self._fire(e, i),
                name=f"dynamics:{type(event).__name__}",
                priority=DYNAMICS_PRIORITY,
            )

    def _fire(self, event: object, index: int) -> None:
        self._event_index = index
        event.apply(self)
        self._applied.append((self._network.sim.now, type(event).__name__))

    # -- selection helpers (used by events) ------------------------------------------

    def selection_rng(self) -> RandomSource:
        """The deterministic stream for the event currently being applied.

        Keyed by ``(scenario name, event index)`` only — independent of
        the trial seed, so the same scenario perturbs the same elements
        in every trial.
        """
        return RandomSource("scenario-dynamics", self._name, self._event_index)

    def select_links(
        self,
        selector: str = "all",
        fraction: float = 1.0,
        links: Sequence[Tuple[int, int]] = (),
    ) -> Tuple[Link, ...]:
        """Resolve a link selection deterministically.

        ``links`` (explicit pairs) wins over ``selector``; ``selector``
        is ``"all"``, a tier name, or ``"random"`` (a ``fraction`` of all
        links drawn from :meth:`selection_rng`).
        """
        if links:
            return tuple(Link.of(*link) for link in links)
        if selector == "all":
            return tuple(self._graph.links)
        if selector == "random":
            pool = list(self._graph.links)
            count = max(1, min(len(pool), round(fraction * len(pool))))
            return tuple(self.selection_rng().sample(pool, count))
        if selector in self._tiers:
            return self._tiers[selector]
        raise ValidationError(
            f"unknown link selector {selector!r}; "
            f"expected 'all', 'random' or one of {sorted(self._tiers)}"
        )

    def select_processes(
        self, fraction: float = 0.0, processes: Sequence[int] = ()
    ) -> Tuple[ProcessId, ...]:
        """Resolve a process selection (explicit ids or a random fraction)."""
        if processes:
            return tuple(int(p) for p in processes)
        pool = list(self._graph.processes)
        count = max(1, min(len(pool), round(fraction * len(pool))))
        return tuple(self.selection_rng().sample(pool, count))

    def cut_links(self, fraction: float = 0.5) -> Tuple[Link, ...]:
        """The links crossing a two-sided split of the process ids.

        Side A is the first ``round(n * fraction)`` process ids (at
        least 1, at most n-1) — a deterministic, topology-independent
        cut.
        """
        n = self._graph.n
        size = max(1, min(n - 1, round(n * float(fraction))))
        side = set(range(size))
        return tuple(
            link
            for link in self._graph.links
            if (link.u in side) != (link.v in side)
        )

    # -- overlay mutation (used by events) --------------------------------------------

    def set_loss(self, links: Iterable[Link], loss: float) -> None:
        """Override the loss probability of ``links`` (until restored)."""
        for link in links:
            self._loss_overlay[Link.of(*link)] = float(loss)
        self._reconfigure()

    def restore_loss(self, links: Iterable[Link]) -> None:
        """Drop the loss overrides of ``links`` (back to base values)."""
        for link in links:
            self._loss_overlay.pop(Link.of(*link), None)
        self._reconfigure()

    def set_crash(self, processes: Iterable[ProcessId], crash: float) -> None:
        """Override the crash probability of ``processes``."""
        for p in processes:
            self._crash_overlay[int(p)] = float(crash)
        self._reconfigure()

    def restore_crash(self, processes: Iterable[ProcessId]) -> None:
        for p in processes:
            self._crash_overlay.pop(int(p), None)
        self._reconfigure()

    def restore_all(self) -> None:
        """Return the whole environment to its base state.

        Clears every loss/crash overlay and, if a burst toggle switched
        the crash model since the driver was built, reverts the model to
        the base kind as well.
        """
        self._loss_overlay.clear()
        self._crash_overlay.clear()
        self._reconfigure()
        current = self._network.options
        if (
            current.crash_model != self._base_options.crash_model
            or current.markov_mean_down_ticks
            != self._base_options.markov_mean_down_ticks
        ):
            self._network.set_crash_model(
                self._base_options.crash_model,
                self._base_options.markov_mean_down_ticks,
            )

    def set_crash_model(
        self, kind: str, mean_down_ticks: Optional[float] = None
    ) -> None:
        """Switch the network's crash model (burst-mode toggles)."""
        self._network.set_crash_model(kind, mean_down_ticks)

    def _reconfigure(self) -> None:
        config = self._base
        if self._loss_overlay:
            config = config.with_loss(dict(self._loss_overlay))
        if self._crash_overlay:
            config = config.with_crash(dict(self._crash_overlay))
        self._network.replace_configuration(config)
