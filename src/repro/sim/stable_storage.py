"""Volatile memory and stable storage (Section 2.1).

Processes "have access to local volatile memory and stable storage.
Information recorded in stable storage survives crashes".  The simulation
models both as in-memory dictionaries; a crash wipes the volatile one.
Stable storage tracks write counts so experiments can quantify how
"judicious" a protocol is about using it (the paper cautions it is slow).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator


class VolatileMemory:
    """Key-value memory lost on crash."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def put(self, key: str, value: Any) -> None:
        self._data[key] = value

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def wipe(self) -> None:
        """Lose everything — called by the crash machinery."""
        self._data.clear()


class StableStorage:
    """Key-value storage surviving crashes, with write accounting.

    The write counter lets tests assert protocols only persist what the
    paper requires (e.g. the local clock value used to estimate the
    process's own crash probability, Section 4.1).
    """

    __slots__ = ("_data", "_writes", "_reads")

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self._writes = 0
        self._reads = 0

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    @property
    def write_count(self) -> int:
        return self._writes

    @property
    def read_count(self) -> int:
        return self._reads

    def read(self, key: str, default: Any = None) -> Any:
        self._reads += 1
        return self._data.get(key, default)

    def write(self, key: str, value: Any) -> None:
        self._writes += 1
        self._data[key] = value

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def keys(self) -> Iterator[str]:
        return iter(self._data.keys())
