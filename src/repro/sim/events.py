"""Event records for the simulation kernel.

Events are ordered by ``(time, priority, seq)``: earlier time first, then
explicit priority, then insertion order — so simultaneous events run in a
deterministic, insertion-stable order, which keeps seeded experiments
exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Tuple

#: Default event priority; lower runs first among simultaneous events.
DEFAULT_PRIORITY = 0

#: Priority used for message deliveries (after timers at the same instant,
#: so periodic protocol timers observe a consistent pre-delivery state).
DELIVERY_PRIORITY = 10

#: Priority used for scenario dynamics (environment changes apply *before*
#: any timer or delivery scheduled at the same instant, so every callback
#: at time t observes the post-change configuration).
DYNAMICS_PRIORITY = -10


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Only the sort key participates in ordering; the callback and metadata
    are comparison-excluded so arbitrary callables can be scheduled.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    @property
    def key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def cancel(self) -> None:
        """Mark the event so the engine skips it (O(1), lazy removal)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug sugar
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.4g}, name={self.name!r}, {state})"


@dataclass(frozen=True)
class TraceRecord:
    """One entry of the optional engine trace (see ``Simulator.trace``)."""

    time: float
    kind: str
    detail: Any
