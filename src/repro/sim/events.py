"""Event records for the simulation kernel.

Events are ordered by ``(time, priority, seq)``: earlier time first, then
explicit priority, then insertion order — so simultaneous events run in a
deterministic, insertion-stable order, which keeps seeded experiments
exactly reproducible.

Hot-path note: the engine's heap stores plain ``(time, priority, seq,
event)`` tuples, so ``heapq`` compares native tuples and never calls into
:class:`Event` during push/pop.  ``Event`` itself is a ``__slots__``
record (no per-instance dict, no dataclass machinery); it still defines
the full ``(time, priority, seq)`` ordering protocol for direct
``sorted()`` use in tests and diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Tuple

#: Default event priority; lower runs first among simultaneous events.
DEFAULT_PRIORITY = 0

#: Priority used for message deliveries (after timers at the same instant,
#: so periodic protocol timers observe a consistent pre-delivery state).
DELIVERY_PRIORITY = 10

#: Priority used for scenario dynamics (environment changes apply *before*
#: any timer or delivery scheduled at the same instant, so every callback
#: at time t observes the post-change configuration).
DYNAMICS_PRIORITY = -10


class Event:
    """One scheduled callback.

    Only the ``(time, priority, seq)`` key participates in ordering; the
    callback and metadata are comparison-excluded so arbitrary callables
    can be scheduled.
    """

    __slots__ = ("time", "priority", "seq", "callback", "name", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        name: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False

    @property
    def key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def cancel(self) -> None:
        """Mark the event so the engine skips it (O(1), lazy removal)."""
        self.cancelled = True

    # ordering protocol on the sort key (mirrors the former
    # ``@dataclass(order=True)`` semantics, including unhashability)
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.key == other.key

    __hash__ = None  # type: ignore[assignment]

    def __lt__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.key < other.key

    def __le__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.key <= other.key

    def __gt__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.key > other.key

    def __ge__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.key >= other.key

    def __repr__(self) -> str:  # pragma: no cover - debug sugar
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.4g}, name={self.name!r}, {state})"


@dataclass(frozen=True)
class TraceRecord:
    """One entry of the optional engine trace (see ``Simulator.trace``)."""

    time: float
    kind: str
    detail: Any
