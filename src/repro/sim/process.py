"""Base class for simulated protocol processes.

A :class:`SimProcess` owns a process id, volatile memory, stable storage
and convenience wrappers around the network/engine: ``send``,
``set_timer`` and ``set_periodic``.  Protocol implementations (optimal,
adaptive, gossip, ...) subclass it and override the ``on_*`` hooks.

Crash semantics: *step* crashes (message-level) are applied by the
network.  *Burst* crashes (Markov model) additionally call
:meth:`handle_crash` / :meth:`handle_recovery`, which wipe volatile memory
and notify the subclass, letting protocols exercise the paper's
crash-recovery path (Event 4 of Algorithm 4 and stable-storage reads).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import Network
from repro.sim.stable_storage import StableStorage, VolatileMemory
from repro.sim.trace import MessageCategory
from repro.types import ProcessId
from repro.util.validation import check_positive


class SimProcess:
    """One protocol process attached to a network.

    Subclasses override:

    * :meth:`on_start` — called once when the network starts.
    * :meth:`on_message` — called per delivered message.
    * :meth:`on_timer` — called per expired (non-periodic) timer.
    * :meth:`on_crash` / :meth:`on_recovery` — burst-crash notifications.
    """

    __slots__ = (
        "pid",
        "network",
        "volatile",
        "stable",
        "_timers",
        "_periodic",
        "_down",
    )
    # NOTE: protocol subclasses deliberately do NOT declare __slots__ —
    # they keep a normal __dict__ for their own state (and tests may
    # monkeypatch hooks on instances); only the base-class plumbing
    # fields above are slotted.

    def __init__(self, pid: ProcessId, network: Network) -> None:
        self.pid = pid
        self.network = network
        self.volatile = VolatileMemory()
        self.stable = StableStorage()
        self._timers: Dict[str, EventHandle] = {}
        self._periodic: Dict[str, Tuple[float, Callable[[], None]]] = {}
        self._down = False
        network.register(self)

    # -- environment --------------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    @property
    def now(self) -> float:
        return self.network.sim.now

    @property
    def neighbors(self) -> Tuple[ProcessId, ...]:
        """The ``neighbors(p_k)`` of the paper."""
        return self.network.graph.neighbors(self.pid)

    @property
    def is_down(self) -> bool:
        """Whether the process is inside a burst-crash down period."""
        return self._down

    # -- communication ------------------------------------------------------------

    def send(
        self,
        receiver: ProcessId,
        payload: Any,
        category: MessageCategory = MessageCategory.DATA,
    ) -> bool:
        """Send one message to a neighbour (no-op while down)."""
        if self._down:
            return False
        return self.network.send(self.pid, receiver, payload, category)

    def send_copies(
        self,
        receiver: ProcessId,
        payload: Any,
        copies: int,
        category: MessageCategory = MessageCategory.DATA,
    ) -> int:
        """Send ``copies`` independent transmissions of the same payload.

        This is the ``repeat m_j[i] times: send`` of Algorithm 1, line 11;
        each copy is a separate step with independent crash/loss draws.
        """
        sent = 0
        for _ in range(copies):
            if self.send(receiver, payload, category):
                sent += 1
        return sent

    # -- timers -------------------------------------------------------------------

    def set_timer(self, delay: float, name: str) -> None:
        """(Re-)arm a named one-shot timer; fires :meth:`on_timer`."""
        check_positive(delay, "delay")
        self.cancel_timer(name)
        event_name = f"timer:{self.pid}:{name}"

        def fire() -> None:
            self._timers.pop(name, None)
            if not self._down:
                self.on_timer(name)

        self._timers[name] = self.sim.schedule(delay, fire, name=event_name)

    def cancel_timer(self, name: str) -> None:
        handle = self._timers.pop(name, None)
        if handle is not None:
            handle.cancel()

    def timer_active(self, name: str) -> bool:
        return name in self._timers

    def set_periodic(self, period: float, name: str, action: Callable[[], None]) -> None:
        """Run ``action`` every ``period`` time units until cancelled.

        The first firing happens one full period from now.  A down process
        skips firings but the schedule keeps ticking (the process resumes
        its periodic activity on recovery).
        """
        check_positive(period, "period")
        self._periodic[name] = (period, action)
        timer_key = f"__periodic__{name}"
        event_name = f"periodic:{self.pid}:{name}"
        periodic = self._periodic
        timers = self._timers
        schedule = self.sim.schedule

        def tick() -> None:
            entry = periodic.get(name)
            if entry is None:
                return
            current_period, current_action = entry
            if not self._down:
                current_action()
            if name in periodic:
                timers[timer_key] = schedule(
                    current_period, tick, name=event_name
                )

        timers[timer_key] = schedule(period, tick, name=event_name)

    def cancel_periodic(self, name: str) -> None:
        self._periodic.pop(name, None)
        self.cancel_timer(f"__periodic__{name}")

    def cancel_all_timers(self) -> None:
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self._periodic.clear()

    # -- crash plumbing (called by the network's crash model) ----------------------

    def handle_crash(self, when: float) -> None:
        """Burst crash began: wipe volatile memory, notify subclass."""
        self._down = True
        self.volatile.wipe()
        self.on_crash()

    def handle_recovery(self, when: float, down_ticks: int) -> None:
        """Burst crash ended after ``down_ticks`` ticks: notify subclass."""
        self._down = False
        self.on_recovery(down_ticks)

    # -- subclass hooks -----------------------------------------------------------

    def on_start(self) -> None:
        """Called once when the network starts."""

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        """Called for each message delivered to this process."""

    def on_timer(self, name: str) -> None:
        """Called when a one-shot timer named ``name`` expires."""

    def on_crash(self) -> None:
        """Called when a burst crash begins (volatile memory already wiped)."""

    def on_recovery(self, down_ticks: int) -> None:
        """Called when the process recovers after ``down_ticks`` ticks down."""

    def __repr__(self) -> str:  # pragma: no cover - debug sugar
        return f"{type(self).__name__}(pid={self.pid})"
