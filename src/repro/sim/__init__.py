"""Discrete-event simulation substrate.

Section 5: *"we built a discrete-event simulation model ... associating a
crash probability to each process and a loss probability to each link"*.
This package is that simulator, built from scratch:

* :mod:`repro.sim.engine` — event queue and virtual clock.
* :mod:`repro.sim.crash` — per-step crash models (i.i.d. per the paper's
  definition of ``P_i``; Markov bursty model for ablations).
* :mod:`repro.sim.link` / :mod:`repro.sim.network` — lossy message
  transport with per-category message accounting.
* :mod:`repro.sim.process` — base class for protocol processes (timers,
  sends, crash-aware delivery, volatile/stable storage).
* :mod:`repro.sim.trace` / :mod:`repro.sim.monitors` — statistics,
  delivery tracking and convergence detection.
"""

from repro.sim.crash import CrashModel, IidCrashModel, MarkovCrashModel, NoCrashModel
from repro.sim.engine import EventHandle, Simulator
from repro.sim.monitors import BroadcastMonitor, ConvergenceMonitor
from repro.sim.network import Network, NetworkOptions
from repro.sim.process import SimProcess
from repro.sim.stable_storage import StableStorage, VolatileMemory
from repro.sim.trace import MessageCategory, MessageStats

__all__ = [
    "Simulator",
    "EventHandle",
    "CrashModel",
    "NoCrashModel",
    "IidCrashModel",
    "MarkovCrashModel",
    "Network",
    "NetworkOptions",
    "SimProcess",
    "StableStorage",
    "VolatileMemory",
    "MessageCategory",
    "MessageStats",
    "BroadcastMonitor",
    "ConvergenceMonitor",
]
