"""Run-time monitors: delivery tracking and convergence detection.

* :class:`BroadcastMonitor` records which processes delivered each
  broadcast message, yielding per-broadcast delivery ratios — the
  empirical counterpart of the reliability ``K``.
* :class:`ConvergenceMonitor` polls a predicate at a fixed period and
  records the first time it holds — used for "all processes learned the
  reliability probabilities" in Figures 5 and 6.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, List, Optional, Set

from repro.sim.engine import Simulator
from repro.types import ProcessId


class BroadcastMonitor:
    """Tracks ``deliver(m)`` events per broadcast id.

    Protocol processes call :meth:`delivered` from their deliver path; the
    experiment reads ratios once the run finishes.
    """

    __slots__ = ("_n", "_deliveries", "_first_delivery_time", "_last_delivery_time")

    def __init__(self, n: int) -> None:
        self._n = n
        self._deliveries: Dict[Hashable, Set[ProcessId]] = {}
        self._first_delivery_time: Dict[Hashable, float] = {}
        self._last_delivery_time: Dict[Hashable, float] = {}

    def delivered(self, message_id: Hashable, pid: ProcessId, now: float) -> None:
        group = self._deliveries.get(message_id)
        if group is None:
            group = self._deliveries[message_id] = set()
        if pid not in group:
            group.add(pid)
            self._first_delivery_time.setdefault(message_id, now)
            self._last_delivery_time[message_id] = now

    def delivery_count(self, message_id: Hashable) -> int:
        return len(self._deliveries.get(message_id, ()))

    def delivery_ratio(self, message_id: Hashable) -> float:
        return self.delivery_count(message_id) / self._n

    def fully_delivered(self, message_id: Hashable) -> bool:
        """Whether every process delivered this broadcast."""
        return self.delivery_count(message_id) == self._n

    def broadcast_ids(self) -> List[Hashable]:
        return list(self._deliveries)

    def all_fully_delivered(self) -> bool:
        return all(self.fully_delivered(mid) for mid in self._deliveries)

    def completion_time(self, message_id: Hashable) -> Optional[float]:
        """Time of the last (n-th) delivery, or None if incomplete."""
        if not self.fully_delivered(message_id):
            return None
        return self._last_delivery_time[message_id]


class ConvergenceMonitor:
    """Polls ``predicate()`` every ``period`` and remembers first success.

    The predicate is evaluated outside any process (omniscient observer),
    so polling consumes no simulated messages.
    """

    __slots__ = (
        "_sim",
        "_predicate",
        "_period",
        "_stop",
        "_deadline",
        "_converged_at",
        "_polls",
    )

    def __init__(
        self,
        sim: Simulator,
        predicate: Callable[[], bool],
        period: float = 1.0,
        stop_when_converged: bool = False,
        deadline: Optional[float] = None,
    ) -> None:
        self._sim = sim
        self._predicate = predicate
        self._period = period
        self._stop = stop_when_converged
        self._deadline = deadline
        self._converged_at: Optional[float] = None
        self._polls = 0
        self._schedule()

    def _schedule(self) -> None:
        self._sim.schedule(self._period, self._poll, name="convergence-poll")

    def _poll(self) -> None:
        self._polls += 1
        if self._predicate():
            self._converged_at = self._sim.now
            if self._stop:
                self._sim.stop()
            return
        if self._deadline is not None and self._sim.now >= self._deadline:
            if self._stop:
                self._sim.stop()
            return
        self._schedule()

    @property
    def converged(self) -> bool:
        return self._converged_at is not None

    @property
    def converged_at(self) -> float:
        """Time of first success (+inf if never converged)."""
        return math.inf if self._converged_at is None else self._converged_at

    @property
    def polls(self) -> int:
        return self._polls
