"""Run-time monitors: delivery tracking, convergence and invariants.

* :class:`BroadcastMonitor` records which processes delivered each
  broadcast message, yielding per-broadcast delivery ratios — the
  empirical counterpart of the reliability ``K``.
* :class:`ConvergenceMonitor` polls a predicate at a fixed period and
  records the first time it holds — used for "all processes learned the
  reliability probabilities" in Figures 5 and 6.
* :class:`InvariantMonitor` instruments a network's accounting and crash
  model to assert structural simulation invariants (no delivery to a
  crashed process, partition-respecting delivery, sane record times) on
  every transmission — the checker behind the generated-scenario
  invariant smoke tests.
"""

from __future__ import annotations

import math
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from repro.sim.crash import CrashModel
from repro.sim.engine import Simulator

if TYPE_CHECKING:
    from repro.sim.network import Network
    from repro.topology.configuration import Configuration
from repro.sim.events import DYNAMICS_PRIORITY
from repro.sim.trace import DropReason, MessageCategory, MessageStats
from repro.types import Link, ProcessId

#: Epoch probes run after the dynamics events of the same instant
#: (``DYNAMICS_PRIORITY``) but before any ordinary callback, so they
#: snapshot the post-change configuration at the event time itself.
EPOCH_PROBE_PRIORITY = (DYNAMICS_PRIORITY + 0) // 2


class BroadcastMonitor:
    """Tracks ``deliver(m)`` events per broadcast id.

    Protocol processes call :meth:`delivered` from their deliver path; the
    experiment reads ratios once the run finishes.
    """

    __slots__ = ("_n", "_deliveries", "_first_delivery_time", "_last_delivery_time")

    def __init__(self, n: int) -> None:
        self._n = n
        self._deliveries: Dict[Hashable, Set[ProcessId]] = {}
        self._first_delivery_time: Dict[Hashable, float] = {}
        self._last_delivery_time: Dict[Hashable, float] = {}

    def delivered(self, message_id: Hashable, pid: ProcessId, now: float) -> None:
        group = self._deliveries.get(message_id)
        if group is None:
            group = self._deliveries[message_id] = set()
        if pid not in group:
            group.add(pid)
            self._first_delivery_time.setdefault(message_id, now)
            self._last_delivery_time[message_id] = now

    def delivery_count(self, message_id: Hashable) -> int:
        return len(self._deliveries.get(message_id, ()))

    def delivery_ratio(self, message_id: Hashable) -> float:
        return self.delivery_count(message_id) / self._n

    def fully_delivered(self, message_id: Hashable) -> bool:
        """Whether every process delivered this broadcast."""
        return self.delivery_count(message_id) == self._n

    def broadcast_ids(self) -> List[Hashable]:
        return list(self._deliveries)

    def all_fully_delivered(self) -> bool:
        return all(self.fully_delivered(mid) for mid in self._deliveries)

    def completion_time(self, message_id: Hashable) -> Optional[float]:
        """Time of the last (n-th) delivery, or None if incomplete."""
        if not self.fully_delivered(message_id):
            return None
        return self._last_delivery_time[message_id]


class ConvergenceMonitor:
    """Polls ``predicate()`` every ``period`` and remembers first success.

    The predicate is evaluated outside any process (omniscient observer),
    so polling consumes no simulated messages.
    """

    __slots__ = (
        "_sim",
        "_predicate",
        "_period",
        "_stop",
        "_deadline",
        "_converged_at",
        "_polls",
    )

    def __init__(
        self,
        sim: Simulator,
        predicate: Callable[[], bool],
        period: float = 1.0,
        stop_when_converged: bool = False,
        deadline: Optional[float] = None,
    ) -> None:
        self._sim = sim
        self._predicate = predicate
        self._period = period
        self._stop = stop_when_converged
        self._deadline = deadline
        self._converged_at: Optional[float] = None
        self._polls = 0
        self._schedule()

    def _schedule(self) -> None:
        self._sim.schedule(self._period, self._poll, name="convergence-poll")

    def _poll(self) -> None:
        self._polls += 1
        if self._predicate():
            self._converged_at = self._sim.now
            if self._stop:
                self._sim.stop()
            return
        if self._deadline is not None and self._sim.now >= self._deadline:
            if self._stop:
                self._sim.stop()
            return
        self._schedule()

    @property
    def converged(self) -> bool:
        return self._converged_at is not None

    @property
    def converged_at(self) -> float:
        """Time of first success (+inf if never converged)."""
        return math.inf if self._converged_at is None else self._converged_at

    @property
    def polls(self) -> int:
        return self._polls


class InvariantViolation(AssertionError):
    """A structural simulation invariant was broken."""


class _CheckingStats(MessageStats):
    """A :class:`MessageStats` that routes every record through a checker.

    Subclassing keeps the real counters accumulating in ``super()``, so
    an instrumented trial reports exactly the metrics it would have
    reported unmonitored.
    """

    __slots__ = ("_monitor",)

    def __init__(self, monitor: "InvariantMonitor", trace: bool = False) -> None:
        super().__init__(trace=trace)
        self._monitor = monitor

    def record(
        self,
        time: float,
        sender: ProcessId,
        receiver: ProcessId,
        category: MessageCategory,
        delivered: bool,
        drop_reason: Optional[DropReason] = None,
    ) -> None:
        self._monitor._check_record(
            time, sender, receiver, delivered, drop_reason
        )
        super().record(time, sender, receiver, category, delivered, drop_reason)


class _CheckingCrashModel(CrashModel):
    """Delegating crash-model wrapper that remembers the last step draw.

    Pure delegation — it consumes no RNG of its own — but records each
    ``crashed_step`` outcome so the monitor can verify that every
    delivery was preceded by an up-step draw for its receiver *at the
    delivery instant*.
    """

    __slots__ = ("_inner", "_last_step")

    def __init__(self, inner: CrashModel) -> None:
        self._inner = inner
        self._last_step: Dict[ProcessId, Tuple[float, bool]] = {}

    def crashed_step(self, p: ProcessId, now: float) -> bool:
        crashed = self._inner.crashed_step(p, now)
        self._last_step[p] = (now, crashed)
        return crashed

    def down_fraction(self, p: ProcessId) -> float:
        return self._inner.down_fraction(p)

    def is_down(self, p: ProcessId, now: float) -> bool:
        return self._inner.is_down(p, now)

    def __getattr__(self, name: str) -> Any:
        # force_recover_all and model-specific surface pass through
        return getattr(self._inner, name)


class InvariantMonitor:
    """Asserts structural invariants on every network transmission.

    Attach to a network after construction (and after the scenario's
    :class:`~repro.sim.dynamics.DynamicsDriver` is installed) but before
    ``network.start()``::

        monitor = InvariantMonitor(sim, network,
                                   event_times=[e.at for e in spec.timeline])
        network.start()
        sim.run(until=duration)
        assert monitor.records_checked > 0

    Checked on every :meth:`MessageStats.record`:

    * **sane record times** — no record stamped in the future or before
      t=0 (delivery records carry their send time, which must not exceed
      the current instant);
    * **delivered xor dropped** — a transmission is delivered or carries
      a drop reason, never both or neither;
    * **real links only** — transmissions only cross links of the graph;
    * **no delivery to a crashed process** — a delivery must be preceded
      by a crash-model step draw for its receiver at the delivery
      instant that came up "up" (and a receiver-crash drop by one that
      came up "crashed");
    * **partition-respecting delivery** — a delivered message's link had
      transmissible loss (< 1) in the configuration epoch of its *send*
      time: messages already in flight may legitimately land after a cut,
      but nothing transmitted across a severed link may ever arrive.

    Configuration epochs are snapshotted by probe events at the supplied
    timeline instants, at a priority after the dynamics events of the
    same instant; the probes also re-instrument the crash model, which
    dynamics events may have replaced.  The monitor draws no RNG of its
    own and leaves the trial's metrics bit-identical.
    """

    __slots__ = ("_sim", "_network", "_epochs", "_checked")

    def __init__(
        self,
        sim: Simulator,
        network: "Network",
        event_times: Iterable[float] = (),
    ) -> None:
        self._sim = sim
        self._network = network
        self._epochs: List[Tuple[float, "Configuration"]] = [(0.0, network.config)]
        self._checked = 0
        stats = _CheckingStats(self, trace=network.stats._trace_enabled)
        network._stats = stats
        self._wrap_crash_model()
        for at in sorted({float(t) for t in event_times}):
            sim.schedule_at(
                at,
                self._probe,
                name="invariant-probe",
                priority=EPOCH_PROBE_PRIORITY,
            )

    @property
    def records_checked(self) -> int:
        """Transmission records inspected so far."""
        return self._checked

    @property
    def epochs(self) -> int:
        """Configuration epochs snapshotted (1 + probes fired)."""
        return len(self._epochs)

    def _wrap_crash_model(self) -> None:
        inner = self._network._crash_model
        if not isinstance(inner, _CheckingCrashModel):
            self._network._crash_model = _CheckingCrashModel(inner)

    def _probe(self) -> None:
        # runs after this instant's dynamics applied (less urgent
        # priority), so the snapshot is the settled post-event config
        self._epochs.append((self._sim.now, self._network.config))
        self._wrap_crash_model()

    def _config_at(self, time: float) -> "Configuration":
        config = self._epochs[0][1]
        for at, snapshot in self._epochs:
            if at > time:
                break
            config = snapshot
        return config

    def _fail(self, message: str) -> None:
        raise InvariantViolation(f"t={self._sim.now:g}: {message}")

    def _check_record(
        self,
        time: float,
        sender: ProcessId,
        receiver: ProcessId,
        delivered: bool,
        drop_reason: Optional[DropReason],
    ) -> None:
        self._checked += 1
        now = self._sim.now
        if not 0.0 <= time <= now:
            self._fail(
                f"transmission record stamped at t={time} outside [0, now]"
            )
        if delivered and drop_reason is not None:
            self._fail(
                f"record {sender}->{receiver} both delivered and "
                f"dropped ({drop_reason})"
            )
        if not delivered and drop_reason is None:
            self._fail(
                f"record {sender}->{receiver} neither delivered nor "
                "carries a drop reason"
            )
        graph = self._network.graph
        if not graph.has_link(sender, receiver):
            self._fail(
                f"transmission {sender}->{receiver} crosses a "
                "non-existent link"
            )
        model = self._network._crash_model
        last = (
            model._last_step.get(receiver)
            if isinstance(model, _CheckingCrashModel)
            else None
        )
        if delivered:
            if last != (now, False):
                self._fail(
                    f"delivery to {receiver} without an up-step crash "
                    f"draw at the delivery instant (last draw: {last})"
                )
            link = Link.of(sender, receiver)
            loss = self._config_at(time).loss_probability(link)
            if loss >= 1.0:
                self._fail(
                    f"delivery {sender}->{receiver} of a message sent "
                    f"at t={time:g} across a severed link (loss={loss})"
                )
        elif drop_reason is DropReason.RECEIVER_CRASH and last != (now, True):
            self._fail(
                f"receiver-crash drop at {receiver} without a crashed "
                f"step draw at this instant (last draw: {last})"
            )
