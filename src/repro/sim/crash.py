"""Process crash models.

Section 2.1 defines ``P_i`` as the ratio of *crashed steps* to total steps.
The faithful model is therefore :class:`IidCrashModel`: every step
(a send or a receive) is independently a crashed step with probability
``P_i``, which makes the per-transmission success probability exactly the
``(1-P_sender)(1-L)(1-P_receiver)`` used by the ``reach`` function.

:class:`MarkovCrashModel` provides *bursty* unavailability (geometric
up/down sojourns with the same stationary down fraction) for sensitivity
ablations, plus crash/recovery notifications so protocols can exercise
Event 4 of Algorithm 4 (recovering after ``n`` ticks down) and stable
storage semantics.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

import numpy as np

from repro.errors import ValidationError
from repro.types import ProcessId
from repro.util.rng import RandomSource


class CrashModel(abc.ABC):
    """Decides, per step, whether a process is crashed.

    A *step* is one send or one receive attempt (per §2.1, a normal step
    carries at most one message).  ``crashed_step`` is consulted by the
    network at each transmission endpoint — it is one of the hottest
    calls in the simulator, so the concrete models batch their RNG draws
    (bit-identical to single draws) and carry ``__slots__``.
    """

    __slots__ = ()

    @abc.abstractmethod
    def crashed_step(self, p: ProcessId, now: float) -> bool:
        """Whether process ``p`` executes a crashed step at time ``now``."""

    @abc.abstractmethod
    def down_fraction(self, p: ProcessId) -> float:
        """The stationary crashed-step probability ``P_p`` of this model."""

    def is_down(self, p: ProcessId, now: float) -> bool:
        """Whether ``p`` is currently in a down *period* (burst models only).

        Step-wise models have no down periods; they return ``False``.
        """
        return False


class NoCrashModel(CrashModel):
    """All processes are always up (``P_i = 0``)."""

    __slots__ = ()

    def crashed_step(self, p: ProcessId, now: float) -> bool:
        return False

    def down_fraction(self, p: ProcessId) -> float:
        return 0.0


class IidCrashModel(CrashModel):
    """Each step is independently crashed with probability ``P_p``.

    Args:
        crash_probabilities: per-process crash probability vector
            (e.g. ``Configuration.crash_vector``).
        rng: deterministic stream for the draws.
    """

    __slots__ = ("_probs", "_prob_list", "_draw")

    def __init__(self, crash_probabilities: np.ndarray, rng: RandomSource) -> None:
        probs = np.asarray(crash_probabilities, dtype=float)
        if probs.ndim != 1:
            raise ValidationError("crash_probabilities must be a 1-D vector")
        if np.any(np.isnan(probs)) or np.any(probs < 0) or np.any(probs > 1):
            raise ValidationError("crash probabilities must be in [0, 1]")
        self._probs = probs
        # python-float copy for the per-step lookup (no numpy scalar
        # boxing per call) and block-buffered draws off the same child
        # stream single draws always used — values are bit-identical
        self._prob_list = probs.tolist()
        self._draw = rng.child("iid-crash").buffered()

    def crashed_step(self, p: ProcessId, now: float) -> bool:
        prob = self._prob_list[p]
        if prob <= 0.0:
            return False
        if prob >= 1.0:
            return True
        return self._draw.next() < prob

    def down_fraction(self, p: ProcessId) -> float:
        return float(self._probs[p])


class MarkovCrashModel(CrashModel):
    """Two-state (up/down) Markov availability with geometric sojourns.

    State is advanced lazily in unit-time ticks.  For a stationary down
    fraction ``P`` and mean down sojourn ``mean_down`` ticks, the
    transition probabilities are::

        p_repair = 1 / mean_down
        p_fail   = P * p_repair / (1 - P)

    so ``P = p_fail / (p_fail + p_repair)``.

    Crash/recovery transitions can be observed through ``on_crash`` /
    ``on_recover`` callbacks — the recovery callback carries the number of
    whole ticks spent down, feeding Event 4 of Algorithm 4.
    """

    __slots__ = (
        "_probs",
        "_p_repair",
        "_p_fail",
        "_p_fail_list",
        "_draw",
        "_down",
        "_last_tick",
        "_down_since",
        "_on_crash",
        "_on_recover",
    )

    def __init__(
        self,
        crash_probabilities: np.ndarray,
        rng: RandomSource,
        mean_down_ticks: float = 5.0,
        on_crash: Optional[Callable[[ProcessId, float], None]] = None,
        on_recover: Optional[Callable[[ProcessId, float, int], None]] = None,
        start_time: float = 0.0,
    ) -> None:
        probs = np.asarray(crash_probabilities, dtype=float)
        if probs.ndim != 1:
            raise ValidationError("crash_probabilities must be a 1-D vector")
        if np.any(np.isnan(probs)) or np.any(probs < 0) or np.any(probs >= 1):
            raise ValidationError(
                "Markov crash probabilities must be in [0, 1) "
                "(P=1 has no stationary up state)"
            )
        if mean_down_ticks < 1.0:
            raise ValidationError(
                f"mean_down_ticks must be >= 1, got {mean_down_ticks}"
            )
        self._probs = probs
        self._p_repair = 1.0 / mean_down_ticks
        self._p_fail = np.where(
            probs > 0, probs * self._p_repair / (1.0 - probs), 0.0
        )
        self._p_fail_list = self._p_fail.tolist()
        if start_time < 0.0:
            raise ValidationError(f"start_time must be >= 0, got {start_time}")
        # buffered draws off the same child stream the per-tick single
        # draws always consumed — bit-identical values in the same order
        self._draw = rng.child("markov-crash").buffered()
        self._down = np.zeros(len(probs), dtype=bool)
        # a model created mid-run (scenario burst toggles, mid-run
        # reconfiguration) starts all-up *at that instant* — advancing
        # from tick 0 would replay the whole past, firing retroactive
        # crash/recovery callbacks with timestamps before `now`
        self._last_tick = np.full(len(probs), int(start_time), dtype=np.int64)
        self._down_since = np.zeros(len(probs), dtype=np.int64)
        self._on_crash = on_crash
        self._on_recover = on_recover

    def _advance(self, p: ProcessId, now: float) -> None:
        tick_now = int(now)
        last_tick = int(self._last_tick[p])
        if tick_now <= last_tick:
            return
        p_fail = self._p_fail_list[p]
        p_repair = self._p_repair
        down = bool(self._down[p])
        draw = self._draw.next
        for t in range(last_tick + 1, tick_now + 1):
            if down:
                if draw() < p_repair:
                    down = False
                    if self._on_recover is not None:
                        self._on_recover(p, float(t), t - int(self._down_since[p]))
            else:
                if p_fail > 0.0 and draw() < p_fail:
                    down = True
                    self._down_since[p] = t
                    if self._on_crash is not None:
                        self._on_crash(p, float(t))
        self._down[p] = down
        self._last_tick[p] = tick_now

    def crashed_step(self, p: ProcessId, now: float) -> bool:
        self._advance(p, now)
        return bool(self._down[p])

    def is_down(self, p: ProcessId, now: float) -> bool:
        self._advance(p, now)
        return bool(self._down[p])

    def down_fraction(self, p: ProcessId) -> float:
        return float(self._probs[p])

    def force_recover_all(self, now: float) -> None:
        """Recover every currently-down process, firing ``on_recover``.

        Called when this model is being replaced mid-run (burst-mode
        toggles, reconfiguration): the replacement starts all-up, so any
        process left in a down sojourn here would otherwise be stranded
        with its ``_down`` flag set forever.  States are first advanced
        to ``now`` so sojourns that already ended lazily recover with
        their natural timing.
        """
        tick_now = int(now)
        for p in range(len(self._probs)):
            self._advance(p, now)
            if not self._down[p]:
                continue
            self._down[p] = False
            if self._on_recover is not None:
                self._on_recover(
                    p, now, max(1, tick_now - int(self._down_since[p]))
                )


def make_crash_model(
    kind: str,
    crash_probabilities: np.ndarray,
    rng: RandomSource,
    **kwargs,
) -> CrashModel:
    """Factory: ``kind`` in {"none", "iid", "markov"}."""
    if kind == "none":
        return NoCrashModel()
    if kind == "iid":
        return IidCrashModel(crash_probabilities, rng)
    if kind == "markov":
        return MarkovCrashModel(crash_probabilities, rng, **kwargs)
    raise ValidationError(f"unknown crash model kind {kind!r}")
