"""The discrete-event simulation kernel.

A classic calendar-queue-free design: a binary heap of plain
``(time, priority, seq, event)`` tuples ordered by their first three
fields.  Storing native tuples (rather than rich event objects) keeps
every ``heappush``/``heappop`` comparison inside CPython's C tuple
comparator — no Python-level ``__lt__`` calls on the hot path.
Cancellation is lazy (events are flagged and skipped on pop), which keeps
both scheduling and cancelling O(log n) / O(1).

Determinism: given the same schedule calls in the same order, the engine
executes callbacks in exactly the same order — simultaneous events tie-break
on priority then insertion sequence, and ``seq`` is unique per simulator so
tuple comparison never reaches the (incomparable) event slot.  All
randomness lives in the protocols' :class:`repro.util.rng.RandomSource`
streams, never in the engine.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Tuple

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import DEFAULT_PRIORITY, Event, TraceRecord

_INF = math.inf

#: One queued entry: ``(time, priority, seq, event)``.
QueueEntry = Tuple[float, int, int, Event]


class EventHandle:
    """Caller-facing handle allowing an event to be cancelled."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled

    def cancel(self) -> None:
        self._event.cancel()


class Simulator:
    """Virtual-time event loop.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [2.0]
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_running",
        "_stopped",
        "_executed",
        "_trace_enabled",
        "_trace",
    )

    def __init__(self, trace: bool = False) -> None:
        self._now = 0.0
        self._queue: List[QueueEntry] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._executed = 0
        self._trace_enabled = trace
        self._trace: List[TraceRecord] = []

    # -- time ---------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of callbacks executed so far.

        Inside :meth:`run` the count is folded in when the loop exits, so
        a callback reading this property mid-run sees the value as of the
        loop's entry; :meth:`step` updates it per event.
        """
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for entry in self._queue if not entry[3].cancelled)

    @property
    def trace_enabled(self) -> bool:
        """Whether this simulator records an execution trace."""
        return self._trace_enabled

    @property
    def trace(self) -> List[TraceRecord]:
        """Engine trace records (only populated when ``trace=True``)."""
        return self._trace

    # -- scheduling ---------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        name: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Raises:
            SchedulingError: on negative, NaN or infinite delay.
        """
        # `delay != delay` is the NaN test; spelled inline (instead of
        # math.isnan/math.isinf) to keep this per-message path call-free
        if delay < 0.0 or delay != delay or delay == _INF:
            raise SchedulingError(f"invalid delay {delay!r}")
        time = self._now + delay
        if time == _INF:
            raise SchedulingError(
                f"cannot schedule at t={time!r} (now={self._now!r})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, name)
        heapq.heappush(self._queue, (time, priority, seq, event))
        return EventHandle(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        name: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute virtual time.

        Raises:
            SchedulingError: if ``time`` is in the past or not finite.
        """
        if time < self._now or time != time or time == _INF:
            raise SchedulingError(
                f"cannot schedule at t={time!r} (now={self._now!r})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, name)
        heapq.heappush(self._queue, (time, priority, seq, event))
        return EventHandle(event)

    # -- execution ----------------------------------------------------------------

    def stop(self) -> None:
        """Request the current :meth:`run` to return after this callback."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns:
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            event = entry[3]
            if event.cancelled:
                continue
            self._now = entry[0]
            if self._trace_enabled:
                self._trace.append(TraceRecord(self._now, "exec", event.name))
            self._executed += 1
            event.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` callbacks have executed.

        ``until`` is inclusive: events at exactly ``until`` execute, and on
        return ``now`` is advanced to ``until`` even if the queue drained
        earlier (so periodic statistics line up).

        Raises:
            SimulationError: on re-entrant ``run`` calls.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        # the hot loop: everything loop-invariant is a local, the heap
        # entry is unpacked positionally, and the trace branch reduces to
        # one predictable jump when tracing is off.  `remaining` counts
        # down to 0; -1 (no limit) decrements forever without triggering.
        queue = self._queue
        pop = heapq.heappop
        limit = _INF if until is None else until
        # a negative budget means "none left" (matches the old `> 0`
        # guard): clamp to 0 so the loop below runs nothing
        remaining = -1 if max_events is None else max(0, max_events)
        tracing = self._trace_enabled
        trace_append = self._trace.append
        executed = 0
        try:
            while queue and remaining != 0 and not self._stopped:
                entry = queue[0]
                event = entry[3]
                if event.cancelled:
                    pop(queue)
                    continue
                time = entry[0]
                if time > limit:
                    break
                pop(queue)
                self._now = time
                if tracing:
                    trace_append(TraceRecord(time, "exec", event.name))
                executed += 1
                event.callback()
                remaining -= 1
        finally:
            self._executed += executed
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the queue entirely (bounded by ``max_events``).

        Raises:
            SimulationError: if the bound is hit, which almost always means
                a runaway periodic timer.
        """
        self.run(max_events=max_events)
        if self.pending_events:
            raise SimulationError(
                f"run_until_idle exhausted {max_events} events with "
                f"{self.pending_events} still pending"
            )
