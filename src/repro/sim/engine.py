"""The discrete-event simulation kernel.

A classic calendar-queue-free design: a binary heap of
:class:`repro.sim.events.Event` ordered by ``(time, priority, seq)``.
Cancellation is lazy (events are flagged and skipped on pop), which keeps
both scheduling and cancelling O(log n) / O(1).

Determinism: given the same schedule calls in the same order, the engine
executes callbacks in exactly the same order — simultaneous events tie-break
on priority then insertion sequence.  All randomness lives in the protocols'
:class:`repro.util.rng.RandomSource` streams, never in the engine.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import DEFAULT_PRIORITY, Event, TraceRecord


class EventHandle:
    """Caller-facing handle allowing an event to be cancelled."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled

    def cancel(self) -> None:
        self._event.cancel()


class Simulator:
    """Virtual-time event loop.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [2.0]
    """

    def __init__(self, trace: bool = False) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._executed = 0
        self._trace_enabled = trace
        self._trace: List[TraceRecord] = []

    # -- time ---------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of callbacks executed so far."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def trace(self) -> List[TraceRecord]:
        """Engine trace records (only populated when ``trace=True``)."""
        return self._trace

    # -- scheduling ---------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        name: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Raises:
            SchedulingError: on negative, NaN or infinite delay.
        """
        if math.isnan(delay) or math.isinf(delay) or delay < 0.0:
            raise SchedulingError(f"invalid delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, name, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        name: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute virtual time.

        Raises:
            SchedulingError: if ``time`` is in the past or not finite.
        """
        if math.isnan(time) or math.isinf(time) or time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time!r} (now={self._now!r})"
            )
        event = Event(
            time=time,
            priority=priority,
            seq=self._seq,
            callback=callback,
            name=name,
        )
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    # -- execution ----------------------------------------------------------------

    def stop(self) -> None:
        """Request the current :meth:`run` to return after this callback."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns:
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            if self._trace_enabled:
                self._trace.append(TraceRecord(self._now, "exec", event.name))
            self._executed += 1
            event.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` callbacks have executed.

        ``until`` is inclusive: events at exactly ``until`` execute, and on
        return ``now`` is advanced to ``until`` even if the queue drained
        earlier (so periodic statistics line up).

        Raises:
            SimulationError: on re-entrant ``run`` calls.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        budget = math.inf if max_events is None else max_events
        try:
            while self._queue and budget > 0 and not self._stopped:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                if not self.step():
                    break
                budget -= 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the queue entirely (bounded by ``max_events``).

        Raises:
            SimulationError: if the bound is hit, which almost always means
                a runaway periodic timer.
        """
        self.run(max_events=max_events)
        if self.pending_events:
            raise SimulationError(
                f"run_until_idle exhausted {max_events} events with "
                f"{self.pending_events} still pending"
            )
