"""Message accounting and optional transmission tracing.

Every experiment in the paper is scored in *messages*: Figure 4 compares
data-message counts, Figure 5/6 count heartbeats per link.  The
:class:`MessageStats` collector therefore tracks counts per category
(data / ack / heartbeat / control) and per link, distinguishing attempted,
lost and delivered transmissions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.types import Link, LinkKey, ProcessId


class MessageCategory(enum.Enum):
    """Classification of simulated messages for accounting."""

    DATA = "data"
    ACK = "ack"
    HEARTBEAT = "heartbeat"
    CONTROL = "control"


class DropReason(enum.Enum):
    """Why a transmission failed."""

    SENDER_CRASH = "sender_crash"
    LINK_LOSS = "link_loss"
    RECEIVER_CRASH = "receiver_crash"


@dataclass(frozen=True)
class TransmissionRecord:
    """One attempted transmission (only recorded when tracing is enabled)."""

    time: float
    sender: ProcessId
    receiver: ProcessId
    category: MessageCategory
    delivered: bool
    drop_reason: Optional[DropReason]


class MessageStats:
    """Counters for sent / lost / delivered messages.

    *Sent* counts every transmission attempt — a message dropped because
    the sender executed a crashed step still consumed a send step, matching
    the cost function ``c(m) = sum(m_j)`` of Eq. (3) which counts messages
    *sent*, not messages delivered.
    """

    __slots__ = (
        "_sent",
        "_delivered",
        "_dropped",
        "_per_link_sent",
        "_trace_enabled",
        "_records",
    )

    def __init__(self, trace: bool = False) -> None:
        self._sent: Dict[MessageCategory, int] = {c: 0 for c in MessageCategory}
        self._delivered: Dict[MessageCategory, int] = {c: 0 for c in MessageCategory}
        self._dropped: Dict[DropReason, int] = {r: 0 for r in DropReason}
        # one per-link map per category, so protocol overhead (CONTROL,
        # HEARTBEAT) is attributable separately from DATA replication
        # traffic; keyed by the raw canonical (u, v) tuple — Link is
        # itself a tuple so lookups by Link hit the same entries, and the
        # public accessors rebuild Link keys — the hot recording path
        # just avoids one NamedTuple allocation per transmission
        self._per_link_sent: Dict[MessageCategory, Dict[LinkKey, int]] = {
            c: {} for c in MessageCategory
        }
        self._trace_enabled = trace
        self._records: List[TransmissionRecord] = []

    # -- recording ---------------------------------------------------------------

    def record(
        self,
        time: float,
        sender: ProcessId,
        receiver: ProcessId,
        category: MessageCategory,
        delivered: bool,
        drop_reason: Optional[DropReason] = None,
    ) -> None:
        self._sent[category] += 1
        if sender < receiver:
            link = (sender, receiver)
        elif receiver < sender:
            link = (receiver, sender)
        else:
            raise ValueError(f"self-link at process {sender} is not allowed")
        per_link = self._per_link_sent[category]
        per_link[link] = per_link.get(link, 0) + 1
        if delivered:
            self._delivered[category] += 1
        elif drop_reason is not None:
            self._dropped[drop_reason] += 1
        if self._trace_enabled:
            self._records.append(
                TransmissionRecord(time, sender, receiver, category, delivered, drop_reason)
            )

    # -- queries -----------------------------------------------------------------

    def sent(self, category: Optional[MessageCategory] = None) -> int:
        """Messages sent, in one category or in total."""
        if category is None:
            return sum(self._sent.values())
        return self._sent[category]

    def delivered(self, category: Optional[MessageCategory] = None) -> int:
        if category is None:
            return sum(self._delivered.values())
        return self._delivered[category]

    def dropped(self, reason: Optional[DropReason] = None) -> int:
        if reason is None:
            return sum(self._dropped.values())
        return self._dropped[reason]

    def sent_on(
        self, link: Link, category: Optional[MessageCategory] = None
    ) -> int:
        """Messages sent across one link (either direction).

        ``category`` narrows the count to one traffic class; the default
        sums every category, bit-identical to the pre-split aggregate.
        """
        key = Link.of(*link)
        if category is not None:
            return self._per_link_sent[category].get(key, 0)
        return sum(
            per_link.get(key, 0) for per_link in self._per_link_sent.values()
        )

    def per_link_sent(
        self, category: Optional[MessageCategory] = None
    ) -> Dict[Link, int]:
        """Per-link send counts, for one category or summed over all."""
        if category is not None:
            return {
                Link(*key): count
                for key, count in self._per_link_sent[category].items()
            }
        merged: Dict[LinkKey, int] = {}
        for per_link in self._per_link_sent.values():
            for key, count in per_link.items():
                merged[key] = merged.get(key, 0) + count
        return {Link(*key): count for key, count in merged.items()}

    def messages_per_link(
        self, link_count: int, category: Optional[MessageCategory] = None
    ) -> float:
        """Average messages per link — the y-axis of Figures 5 and 6."""
        if link_count <= 0:
            raise ValueError("link_count must be positive")
        return self.sent(category) / link_count

    @property
    def records(self) -> List[TransmissionRecord]:
        return self._records

    def snapshot(self) -> Dict[str, int]:
        """Flat dict summary, convenient for reports."""
        out: Dict[str, int] = {}
        for cat in MessageCategory:
            out[f"sent_{cat.value}"] = self._sent[cat]
            out[f"delivered_{cat.value}"] = self._delivered[cat]
        for reason in DropReason:
            out[f"dropped_{reason.value}"] = self._dropped[reason]
        out["sent_total"] = self.sent()
        out["delivered_total"] = self.delivered()
        return out

    def reset(self) -> None:
        """Zero all counters (e.g. after the warm-up/convergence phase)."""
        for cat in MessageCategory:
            self._sent[cat] = 0
            self._delivered[cat] = 0
        for reason in DropReason:
            self._dropped[reason] = 0
        for per_link in self._per_link_sent.values():
            per_link.clear()
        self._records.clear()
