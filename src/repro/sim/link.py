"""Lossy-link transmission model.

Each link drops a requested transmission independently with its configured
loss probability ``L_x`` (Section 2.1).  Latency is configurable but plays
no role in the paper's metrics (all results are message counts); the
default small constant latency merely sequences deliveries after sends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import UnknownLinkError, ValidationError
from repro.topology.configuration import Configuration
from repro.types import Link, ProcessId
from repro.util.rng import RandomSource


@dataclass(frozen=True)
class LatencyModel:
    """Per-hop latency: ``base + jitter * U[0,1)`` time units."""

    base: float = 0.1
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base < 0 or self.jitter < 0:
            raise ValidationError("latency parameters must be >= 0")

    def sample(self, rng: RandomSource) -> float:
        if self.jitter == 0.0:
            return self.base
        return self.base + self.jitter * rng.random()


class LossyLinkLayer:
    """Draws per-transmission loss outcomes from per-link streams.

    One child random stream per link keeps outcomes independent of the
    order in which other links transmit — crucial for reproducibility
    when protocols are refactored.
    """

    def __init__(self, config: Configuration, rng: RandomSource) -> None:
        self._config = config
        self._graph = config.graph
        self._root = rng.child("link-layer")
        self._streams: Dict[int, RandomSource] = {}

    def _stream(self, link: Link) -> RandomSource:
        idx = self._graph.link_id(link)
        stream = self._streams.get(idx)
        if stream is None:
            stream = self._root.child("loss", idx)
            self._streams[idx] = stream
        return stream

    def loss_probability(self, link: Link) -> float:
        return self._config.loss_probability(link)

    def transmit(self, sender: ProcessId, receiver: ProcessId) -> bool:
        """Whether one transmission across (sender, receiver) survives the link.

        Raises:
            UnknownLinkError: if the processes are not neighbours.
        """
        if not self._graph.has_link(sender, receiver):
            raise UnknownLinkError(
                f"no link between {sender} and {receiver}"
            )
        link = Link.of(sender, receiver)
        loss = self._config.loss_probability(link)
        if loss <= 0.0:
            return True
        if loss >= 1.0:
            return False
        return self._stream(link).random() >= loss
