"""Lossy-link transmission model.

Each link drops a requested transmission independently with its configured
loss probability ``L_x`` (Section 2.1).  Latency is configurable but plays
no role in the paper's metrics (all results are message counts); the
default small constant latency merely sequences deliveries after sends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import UnknownLinkError, ValidationError
from repro.topology.configuration import Configuration
from repro.types import Link, ProcessId
from repro.util.rng import BufferedUniforms, RandomSource

#: One cached directed-pair entry: (loss probability, buffered stream or
#: None when the loss is degenerate and no draw is ever needed).
_LinkEntry = Tuple[float, Optional[BufferedUniforms]]


@dataclass(frozen=True)
class LatencyModel:
    """Per-hop latency: ``base + jitter * U[0,1)`` time units."""

    base: float = 0.1
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base < 0 or self.jitter < 0:
            raise ValidationError("latency parameters must be >= 0")

    def sample(self, rng: RandomSource) -> float:
        if self.jitter == 0.0:
            return self.base
        return self.base + self.jitter * rng.random()


class LossyLinkLayer:
    """Draws per-transmission loss outcomes from per-link streams.

    One child random stream per link keeps outcomes independent of the
    order in which other links transmit — crucial for reproducibility
    when protocols are refactored.

    Hot-path layout: the first transmission over a directed pair
    validates the link and materialises a ``(loss, draw)`` entry under
    both ``(u, v)`` and ``(v, u)``; later transmissions are one dict hit
    plus one buffered draw.  Both directions share the *same* buffered
    stream (keyed by the undirected link id), exactly as the unbuffered
    per-link streams always did, and the configuration behind the cached
    loss probabilities is immutable — reconfiguration builds a fresh
    layer.
    """

    __slots__ = ("_config", "_graph", "_root", "_cache")

    def __init__(self, config: Configuration, rng: RandomSource) -> None:
        self._config = config
        self._graph = config.graph
        self._root = rng.child("link-layer")
        self._cache: Dict[Tuple[ProcessId, ProcessId], _LinkEntry] = {}

    def _materialize(
        self, sender: ProcessId, receiver: ProcessId
    ) -> _LinkEntry:
        """Validate one directed pair and cache its (loss, draw) entry."""
        if not self._graph.has_link(sender, receiver):
            raise UnknownLinkError(
                f"no link between {sender} and {receiver}"
            )
        link = Link.of(sender, receiver)
        loss = self._config.loss_probability(link)
        draw = None
        if 0.0 < loss < 1.0:
            # same child labels the unbuffered per-link streams used, so
            # the draw sequence is bit-identical
            idx = self._graph.link_id(link)
            draw = self._root.child("loss", idx).buffered()
        entry = (loss, draw)
        self._cache[(sender, receiver)] = entry
        self._cache[(receiver, sender)] = entry
        return entry

    def loss_probability(self, link: Link) -> float:
        return self._config.loss_probability(link)

    def transmit(self, sender: ProcessId, receiver: ProcessId) -> bool:
        """Whether one transmission across (sender, receiver) survives the link.

        Raises:
            UnknownLinkError: if the processes are not neighbours.
        """
        entry = self._cache.get((sender, receiver))
        if entry is None:
            entry = self._materialize(sender, receiver)
        loss, draw = entry
        if draw is not None:
            return draw.next() >= loss
        return loss <= 0.0
