"""The simulated network: processes + links + crash/loss semantics.

``Network`` wires protocol processes (subclasses of
:class:`repro.sim.process.SimProcess`) onto a topology and delivers their
messages with the paper's probabilistic semantics:

1. the *send step* fails if the sender draws a crashed step,
2. the link drops the message with probability ``L``,
3. the *receive step* fails if the receiver draws a crashed step.

A transmission therefore succeeds with ``(1-P_s)(1-L)(1-P_r)`` — exactly
the success probability the ``reach`` function (Eq. 1/2) optimises for.
Every attempt is counted in :class:`repro.sim.trace.MessageStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.errors import SimulationError, ValidationError
from repro.sim.crash import CrashModel, IidCrashModel, NoCrashModel
from repro.sim.engine import Simulator
from repro.sim.events import DELIVERY_PRIORITY
from repro.sim.link import LatencyModel, LossyLinkLayer
from repro.sim.trace import DropReason, MessageCategory, MessageStats
from repro.topology.configuration import Configuration
from repro.topology.graph import Graph
from repro.types import Link, ProcessId
from repro.util.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import SimProcess


@dataclass(frozen=True)
class NetworkOptions:
    """Tunable knobs of the network substrate."""

    latency: LatencyModel = field(default_factory=LatencyModel)
    trace_messages: bool = False
    crash_model: str = "iid"
    markov_mean_down_ticks: float = 5.0


class _Delivery:
    """One scheduled message arrival.

    A ``__slots__`` callable instead of a per-message closure: the send
    path allocates exactly one small object per in-flight message, and
    the receive-side crash draw + stats recording happen when the engine
    invokes it at delivery time.  ``send_time`` is the *send* timestamp —
    transmission records are stamped with when the attempt was made,
    matching the original accounting.
    """

    __slots__ = ("network", "send_time", "sender", "receiver", "category", "payload")

    def __init__(
        self,
        network: "Network",
        send_time: float,
        sender: ProcessId,
        receiver: ProcessId,
        category: MessageCategory,
        payload: Any,
    ) -> None:
        self.network = network
        self.send_time = send_time
        self.sender = sender
        self.receiver = receiver
        self.category = category
        self.payload = payload

    def __call__(self) -> None:
        network = self.network
        receiver = self.receiver
        if network._crash_model.crashed_step(receiver, network._sim.now):
            network._stats.record(
                self.send_time,
                self.sender,
                receiver,
                self.category,
                False,
                DropReason.RECEIVER_CRASH,
            )
            return
        network._stats.record(
            self.send_time, self.sender, receiver, self.category, True
        )
        network._processes[receiver].on_message(self.sender, self.payload)


class Network:
    """Simulated message-passing substrate over a graph + configuration.

    Args:
        sim: the event engine driving the run.
        config: topology + true crash/loss probabilities.
        rng: root random stream; the network derives independent child
            streams for link losses, crash draws and latency jitter.
        options: see :class:`NetworkOptions`.
    """

    __slots__ = (
        "_sim",
        "_config",
        "_graph",
        "_options",
        "_rng",
        "_links",
        "_latency_rng",
        "_latency_base",
        "_latency_jitter",
        "_stats",
        "_processes",
        "_started",
        "_crash_model",
    )

    def __init__(
        self,
        sim: Simulator,
        config: Configuration,
        rng: RandomSource,
        options: Optional[NetworkOptions] = None,
    ) -> None:
        self._sim = sim
        self._config = config
        self._graph = config.graph
        self._options = options or NetworkOptions()
        self._rng = rng.child("network")
        self._links = LossyLinkLayer(config, self._rng)
        self._latency_rng = self._rng.child("latency")
        # the latency model is immutable for the network's lifetime
        # (reconfiguration keeps options); cache its fields so the send
        # path samples without attribute chains or a method call
        self._latency_base = self._options.latency.base
        self._latency_jitter = self._options.latency.jitter
        self._stats = MessageStats(trace=self._options.trace_messages)
        self._processes: Dict[ProcessId, "SimProcess"] = {}
        self._started = False
        self._crash_model = self._make_crash_model()

    def _make_crash_model(self) -> CrashModel:
        kind = self._options.crash_model
        crash_vec = self._config.crash_vector
        if kind == "none" or not crash_vec.any():
            return NoCrashModel()
        if kind == "iid":
            return IidCrashModel(crash_vec, self._rng)
        if kind == "markov":
            from repro.sim.crash import MarkovCrashModel

            return MarkovCrashModel(
                crash_vec,
                self._rng,
                mean_down_ticks=self._options.markov_mean_down_ticks,
                on_crash=self._on_process_crash,
                on_recover=self._on_process_recover,
                start_time=self._sim.now,
            )
        raise ValidationError(f"unknown crash model {kind!r}")

    def _retire_crash_model(self) -> None:
        """Recover anything the outgoing crash model holds down.

        A replacement model starts all-up; without this, a process that
        happened to be mid-sojourn when the model was swapped would keep
        its down flag forever and never send, receive or fire timers
        again.
        """
        retire = getattr(self._crash_model, "force_recover_all", None)
        if retire is not None:
            retire(self._sim.now)

    def _on_process_crash(self, p: ProcessId, when: float) -> None:
        proc = self._processes.get(p)
        if proc is not None:
            proc.handle_crash(when)

    def _on_process_recover(self, p: ProcessId, when: float, down_ticks: int) -> None:
        proc = self._processes.get(p)
        if proc is not None:
            proc.handle_recovery(when, down_ticks)

    # -- wiring -------------------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def config(self) -> Configuration:
        return self._config

    @property
    def stats(self) -> MessageStats:
        return self._stats

    @property
    def crash_model(self) -> CrashModel:
        return self._crash_model

    @property
    def options(self) -> NetworkOptions:
        """The current substrate options (crash model kind included)."""
        return self._options

    def register(self, process: "SimProcess") -> None:
        """Attach a protocol process; ids must be unique and in the graph."""
        pid = process.pid
        if not 0 <= pid < self._graph.n:
            raise ValidationError(f"process id {pid} outside graph")
        if pid in self._processes:
            raise SimulationError(f"process {pid} registered twice")
        self._processes[pid] = process

    def process(self, pid: ProcessId) -> "SimProcess":
        return self._processes[pid]

    @property
    def processes(self) -> List["SimProcess"]:
        return [self._processes[p] for p in sorted(self._processes)]

    def start(self) -> None:
        """Invoke ``on_start`` on every registered process (once)."""
        if self._started:
            raise SimulationError("network already started")
        if len(self._processes) != self._graph.n:
            raise SimulationError(
                f"{len(self._processes)} processes registered for a graph "
                f"of {self._graph.n}"
            )
        self._started = True
        for pid in sorted(self._processes):
            self._processes[pid].on_start()

    # -- dynamic environments -------------------------------------------------------

    def replace_configuration(self, config: Configuration) -> None:
        """Swap the true failure configuration mid-run.

        Models the dynamic environments of the paper's introduction
        ("the dynamic nature of a large system would render [a-priori
        information] obsolete quickly"): the topology must be unchanged,
        but crash/loss probabilities may shift.  Link-loss and crash
        draws continue from fresh streams under the new probabilities;
        protocol state is untouched — the adaptive protocol is expected
        to *re-converge* to the new configuration (tested in
        tests/test_dynamic.py).
        """
        if config.graph != self._graph:
            raise ValidationError(
                "replace_configuration requires an identical topology"
            )
        self._retire_crash_model()
        self._config = config
        self._rng = self._rng.child("reconfigured")
        self._links = LossyLinkLayer(config, self._rng)
        self._crash_model = self._make_crash_model()

    def set_crash_model(
        self, kind: str, mean_down_ticks: Optional[float] = None
    ) -> None:
        """Switch the crash model mid-run (scenario burst-mode toggles).

        The current configuration's crash vector is kept; only the model
        *kind* (``"none"`` / ``"iid"`` / ``"markov"``) and, optionally, the
        Markov mean down sojourn change.  The rebuilt model draws from a
        fresh child stream, so toggling is deterministic per seed and a
        toggle never replays the replaced model's draws.  Markov crash and
        recovery callbacks stay wired to the registered processes.
        """
        if kind not in ("none", "iid", "markov"):
            # validate BEFORE touching any state: a bad kind must not
            # retire the live model or poison self._options (which every
            # later replace_configuration would rebuild from)
            raise ValidationError(f"unknown crash model {kind!r}")
        self._retire_crash_model()
        options = replace(self._options, crash_model=kind)
        if mean_down_ticks is not None:
            options = replace(options, markov_mean_down_ticks=mean_down_ticks)
        self._options = options
        self._rng = self._rng.child("crash-model", kind)
        self._crash_model = self._make_crash_model()

    # -- transmission -------------------------------------------------------------

    def send(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        payload: Any,
        category: MessageCategory = MessageCategory.DATA,
    ) -> bool:
        """Attempt one message transmission; returns whether it will deliver.

        The attempt is always counted as *sent*.  Loss/crash outcomes are
        drawn immediately (they are per-transmission Bernoulli events);
        successful messages are delivered after the latency delay with
        :data:`~repro.sim.events.DELIVERY_PRIORITY`.
        """
        sim = self._sim
        now = sim.now
        if self._crash_model.crashed_step(sender, now):
            self._stats.record(
                now, sender, receiver, category, False, DropReason.SENDER_CRASH
            )
            return False
        if not self._links.transmit(sender, receiver):
            self._stats.record(
                now, sender, receiver, category, False, DropReason.LINK_LOSS
            )
            return False
        delay = self._latency_base
        if self._latency_jitter != 0.0:
            delay += self._latency_jitter * self._latency_rng.random()
        sim.schedule(
            delay,
            _Delivery(self, now, sender, receiver, category, payload),
            # the per-message name only exists for the engine trace;
            # skip the f-string entirely on untraced (production) runs
            name=f"deliver:{sender}->{receiver}" if sim.trace_enabled else "",
            priority=DELIVERY_PRIORITY,
        )
        return True

    def broadcast_to_neighbors(
        self,
        sender: ProcessId,
        payload: Any,
        category: MessageCategory = MessageCategory.DATA,
    ) -> int:
        """Send ``payload`` to every neighbour of ``sender``; returns count."""
        send = self.send
        count = 0
        for q in self._graph.neighbors(sender):
            send(sender, q, payload, category)
            count += 1
        return count
