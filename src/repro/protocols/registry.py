"""Protocol registry: one extensible surface for every diffusion protocol.

Every comparable protocol stack — the paper's adaptive algorithm, the
optimal oracle, the Section 5 reference gossip, and the extended
baselines — is described by a :class:`ProtocolSpec`: a canonical name
plus aliases, a uniform ``factory(ctx) -> list[nodes]`` taking a single
:class:`DeployContext`, a typed parameter dataclass with JSON-able
defaults, and capability flags.  Scenario trials, the figure builders
and the CLI all deploy through this registry, so adding a sixth protocol
(or a user-supplied one) is a one-file change:

    from repro import ProtocolSpec, register_protocol

    register_protocol(ProtocolSpec(
        name="my-proto",
        description="my experimental diffusion protocol",
        factory=lambda ctx: [MyProto(p, ctx.network, ctx.monitor,
                                     ctx.k_target) for p in ctx.processes],
    ))

Third-party packages can ship protocols without touching this codebase:

* **entry points** — declare ``[project.entry-points."repro.protocols"]``
  pointing at a :class:`ProtocolSpec` (or a zero-argument callable / list
  of specs); the registry discovers installed plugins lazily;
* **environment variable** — ``REPRO_PROTOCOLS=module:attr,...`` loads
  specs from importable modules, which also reaches campaign worker
  processes (they re-import this module and re-run discovery).

Capability flags replace protocol-name special-casing at the call sites:

===================  ===============================================
``plans``            may refuse a broadcast with
                     :class:`~repro.errors.UnreachableTargetError`
                     when the target ``K`` is unattainable under its
                     current knowledge (the oracle mid-partition)
``learns``           holds learned ``(Lambda_k, C_k)`` knowledge and
                     exposes a per-node ``.view`` — scenario trials arm
                     the re-convergence watcher for these protocols
``needs_calibration``  has an empirical knob tuned per environment
                     (gossip's round budget) rather than derived
``needs_rng``        deployment consumes a seeded
                     :class:`~repro.util.rng.RandomSource` from the
                     :class:`DeployContext`
===================  ===============================================
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
    get_type_hints,
)

from repro.core.adaptive import AdaptiveBroadcast, AdaptiveParameters
from repro.core.knowledge import KnowledgeParameters
from repro.core.optimal import OptimalBroadcast
from repro.errors import (
    UnknownProtocolError,
    ValidationError,
    closest_name,
    did_you_mean,
)
from repro.protocols.flooding import FloodingBroadcast
from repro.protocols.gossip import GossipBroadcast, GossipParameters
from repro.protocols.partial_view import (
    AdaptivePVBroadcast,
    AdaptivePVParams,
    FloodingPVBroadcast,
    FloodingPVParams,
    GossipPVBroadcast,
    GossipPVParams,
)
from repro.protocols.twophase import TwoPhaseBroadcast, TwoPhaseParameters
from repro.sim.monitors import BroadcastMonitor
from repro.sim.network import Network
from repro.util.plugins import load_entry_point_plugins, load_env_plugins
from repro.util.rng import RandomSource
from repro.util.validation import (
    check_positive,
    check_positive_int,
    coerce_scalar,
    unwrap_optional,
)

#: Entry-point group third-party packages register protocol specs under.
ENTRY_POINT_GROUP = "repro.protocols"

#: Comma-separated ``module:attr`` list of plugin specs to load — the
#: uninstalled-plugin path (reaches spawn-safe campaign workers too,
#: since the environment is inherited and discovery re-runs on import).
PLUGIN_ENV = "REPRO_PROTOCOLS"

#: Knowledge-activity sizing scenario runs hand the adaptive protocol:
#: delta/tick of 1.0 as in the paper's convergence experiments, a coarser
#: interval count (50) to keep heartbeat snapshots cheap at scenario
#: durations.
SCENARIO_KNOWLEDGE = KnowledgeParameters(delta=1.0, intervals=50, tick=1.0)


@dataclass
class DeployContext:
    """Everything a protocol factory may need to instantiate its nodes.

    One uniform argument replaces the per-protocol constructor wiring
    that used to live in ``scenario/trial.py``: factories read the
    network, the delivery monitor, the reliability target, an optional
    seeded RNG (present when the spec declares ``needs_rng``) and the
    protocol's typed parameter object.

    Attributes:
        network: the simulated network to deploy into.
        monitor: delivery monitor shared by all nodes.
        k_target: reliability target ``K`` handed to every node.
        rng: seeded random source for protocols whose *deployment*
            consumes randomness (e.g. two-phase peer selection); None
            for deterministic deployments.
        params: instance of the spec's ``params_type`` (None when the
            protocol has no parameters or defaults are wanted).
    """

    network: Network
    monitor: BroadcastMonitor
    k_target: float
    rng: Optional[RandomSource] = None
    params: Optional[object] = None

    @property
    def graph(self):
        return self.network.graph

    @property
    def processes(self):
        return self.network.graph.processes


# -- typed per-protocol parameter dataclasses -----------------------------------------
#
# Flat, JSON-able and validated: campaign sweeps (``--sweep
# gossip.rounds=4,8``), scenario overrides and the public API all address
# per-protocol knobs through these, never through positional constructor
# arguments.


@dataclass(frozen=True)
class AdaptiveProtocolParams:
    """Knobs of the adaptive protocol (Section 4).

    Attributes:
        delta: heartbeat period (the paper's ``delta``).
        intervals: Bayesian interval count ``U`` (paper: 100; scenario
            runs default to 50 — see ``SCENARIO_KNOWLEDGE``).
        tick: self-reliability tick period (Events 3/4).
        view_impl: "vector" (NumPy tables) or "object" (didactic).
        recompute_at_receiver: re-run ``optimize`` at every hop
            (Algorithm 1 line 9, literally).
        piggyback_knowledge: attach knowledge snapshots to forwarded
            data messages (Section 4.1's bandwidth optimisation).
    """

    delta: float = 1.0
    intervals: int = 100
    tick: float = 1.0
    view_impl: str = "vector"
    recompute_at_receiver: bool = False
    piggyback_knowledge: bool = False

    def __post_init__(self) -> None:
        check_positive(self.delta, "delta")
        check_positive_int(self.intervals, "intervals")
        check_positive(self.tick, "tick")
        if self.view_impl not in ("vector", "object"):
            raise ValidationError(
                f"view_impl must be 'vector' or 'object', got {self.view_impl!r}"
            )

    def to_adaptive_parameters(self) -> AdaptiveParameters:
        return AdaptiveParameters(
            knowledge=KnowledgeParameters(
                delta=self.delta, intervals=self.intervals, tick=self.tick
            ),
            view_impl=self.view_impl,
            recompute_at_receiver=self.recompute_at_receiver,
            piggyback_knowledge=self.piggyback_knowledge,
        )


@dataclass(frozen=True)
class OptimalProtocolParams:
    """Knobs of the optimal oracle (Algorithm 1 with perfect knowledge)."""

    recompute_at_receiver: bool = False


@dataclass(frozen=True)
class GossipProtocolParams:
    """Knobs of the Section 5 reference gossip.

    Attributes:
        rounds: per-broadcast forwarding rounds.  The paper calibrates
            this empirically per environment (``needs_calibration``);
            scenario runs default to the scenario's fixed
            ``gossip_rounds`` budget.
        step_period: virtual-time length of one forwarding step.
        fanout: max neighbours targeted per step (None = all eligible,
            the paper's baseline behaviour).
    """

    rounds: int = 5
    step_period: float = 1.0
    fanout: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive_int(self.rounds, "rounds")
        check_positive(self.step_period, "step_period")
        if self.fanout is not None:
            check_positive_int(self.fanout, "fanout")


@dataclass(frozen=True)
class FloodingProtocolParams:
    """Flooding has no knobs; the empty dataclass keeps the surface uniform."""


@dataclass(frozen=True)
class TwoPhaseProtocolParams:
    """Knobs of the bimodal-style two-phase baseline.

    Attributes:
        gossip_period: interval between anti-entropy digest exchanges.
        rounds: anti-entropy rounds each process runs.  This is an
            explicit parameter: scenario runs *default* it to
            ``max(1, int(duration / gossip_period))`` (one repair
            opportunity per period for the whole run) via the spec's
            ``scenario_defaults`` hook — override with
            ``--sweep two-phase.rounds=...`` or a params override.
    """

    gossip_period: float = 1.0
    rounds: int = 10

    def __post_init__(self) -> None:
        check_positive(self.gossip_period, "gossip_period")
        check_positive_int(self.rounds, "rounds")


# -- the spec -------------------------------------------------------------------------


@dataclass(frozen=True)
class ProtocolSpec:
    """Descriptor of one registrable diffusion protocol.

    Attributes:
        name: canonical registry name (lower-case, dash-separated).
        factory: ``factory(ctx) -> list[nodes]`` deploying one node per
            process of ``ctx.network`` (nodes self-register with the
            network on construction).
        description: one-line human summary.
        aliases: alternative accepted spellings.
        params_type: frozen dataclass of JSON-able tunables (None for
            parameterless protocols).
        plans / learns / needs_calibration / needs_rng: capability
            flags — see the module docstring.
        default_compare: include in the default scenario comparison set
            (heavyweight baselines opt out and run via ``--protocols``).
        scenario_defaults: optional hook mapping a
            :class:`~repro.scenario.schema.ScenarioSpec` to default
            parameter overrides (e.g. gossip reads the scenario's fixed
            round budget); explicit overrides still win.
    """

    name: str
    factory: Callable[[DeployContext], List[object]]
    description: str = ""
    aliases: Tuple[str, ...] = ()
    params_type: Optional[type] = None
    plans: bool = False
    learns: bool = False
    needs_calibration: bool = False
    needs_rng: bool = False
    default_compare: bool = True
    scenario_defaults: Optional[Callable[[Any], Dict[str, Any]]] = None

    def capabilities(self) -> Tuple[str, ...]:
        """The set capability flags, as a stable tuple of names."""
        return tuple(
            flag
            for flag in ("plans", "learns", "needs_calibration", "needs_rng")
            if getattr(self, flag)
        )

    def param_fields(self) -> List[Tuple[str, str, object]]:
        """``(name, type name, default)`` rows for help/describe output."""
        if self.params_type is None:
            return []
        rows = []
        hints = get_type_hints(self.params_type)
        for f in dataclass_fields(self.params_type):
            rows.append((f.name, _type_name(hints[f.name]), f.default))
        return rows

    def make_params(
        self,
        scenario: Optional[Any] = None,
        overrides: Optional[Dict[str, Any]] = None,
    ) -> Optional[object]:
        """Build the typed parameter object for one deployment.

        Precedence: dataclass defaults < ``scenario_defaults(scenario)``
        < explicit ``overrides``.  Override keys are validated against
        the dataclass fields (with a closest-match suggestion) and
        values are coerced to the field types, so sweep values arriving
        as strings or floats land correctly typed.
        """
        if self.params_type is None:
            if overrides:
                raise ValidationError(
                    f"protocol {self.name!r} has no parameters; "
                    f"got overrides {sorted(overrides)}"
                )
            return None
        values: Dict[str, Any] = {}
        if scenario is not None and self.scenario_defaults is not None:
            values.update(self.scenario_defaults(scenario))
        if overrides:
            hints = get_type_hints(self.params_type)
            names = [f.name for f in dataclass_fields(self.params_type)]
            for key, value in overrides.items():
                if key not in names:
                    _, hint = did_you_mean(key, names)
                    raise ValidationError(
                        f"protocol {self.name!r} has no parameter {key!r} "
                        f"(available: {', '.join(names) or 'none'}){hint}"
                    )
                values[key] = _coerce_value(self.name, key, hints[key], value)
        return self.params_type(**values)

    def deploy(self, ctx: DeployContext) -> List[object]:
        """Instantiate the protocol's nodes (defaulting missing params)."""
        if ctx.params is None and self.params_type is not None:
            # copy rather than write back: one ctx may deploy several
            # protocols, and another spec's params must never leak in
            ctx = dataclasses.replace(ctx, params=self.params_type())
        if self.needs_rng and ctx.rng is None:
            raise ValidationError(
                f"protocol {self.name!r} needs a seeded rng in its "
                "DeployContext (needs_rng capability)"
            )
        return self.factory(ctx)


def _type_name(hint: Any) -> str:
    base = unwrap_optional(hint)
    if base is not hint:  # Optional[T] renders as "T?"
        return f"{_type_name(base)}?"
    return getattr(hint, "__name__", str(hint))


def _coerce_value(protocol: str, key: str, hint: Any, value: Any) -> Any:
    """Coerce a sweep/override value to a parameter field's type."""
    return coerce_scalar(f"protocol parameter {protocol}.{key}", hint, value)


# -- the registry ---------------------------------------------------------------------

_REGISTRY: Dict[str, ProtocolSpec] = {}  # canonical name -> spec, in order
_LOOKUP: Dict[str, str] = {}  # normalized name/alias -> canonical name
_plugins_loaded = False


def _norm(name: str) -> str:
    return str(name).strip().lower().replace("_", "-")


def register_protocol(spec: ProtocolSpec, replace: bool = False) -> ProtocolSpec:
    """Register a protocol spec; returns it for chaining.

    Raises:
        ValidationError: on an empty/duplicate name or alias (unless
            ``replace`` is set, which atomically swaps the old spec out).
    """
    if not isinstance(spec, ProtocolSpec):
        raise ValidationError(
            f"register_protocol takes a ProtocolSpec, got {type(spec).__name__}"
        )
    name = _norm(spec.name)
    if not name:
        raise ValidationError("protocol name must be non-empty")
    if not callable(spec.factory):
        raise ValidationError(f"protocol {name!r} factory is not callable")
    keys = [name] + [_norm(a) for a in spec.aliases]
    for key in keys:
        owner = _LOOKUP.get(key)
        if owner is not None and owner != name and not replace:
            raise ValidationError(
                f"protocol name/alias {key!r} is already registered "
                f"(by {owner!r}); pass replace=True to override"
            )
    if name in _REGISTRY and not replace:
        raise ValidationError(
            f"protocol {name!r} is already registered; "
            "pass replace=True to override"
        )
    # evict the current owner of every colliding key, not just `name`:
    # a replacing spec whose alias steals another protocol's canonical
    # name must not leave that protocol orphaned in the registry
    for key in keys:
        unregister_protocol(key, missing_ok=True)
    _REGISTRY[name] = spec
    for key in keys:
        _LOOKUP[key] = name
    return spec


def unregister_protocol(name: str, missing_ok: bool = False) -> None:
    """Remove a protocol and all its aliases (mainly for tests/plugins)."""
    canonical = _LOOKUP.get(_norm(name))
    if canonical is None:
        if missing_ok:
            return
        raise UnknownProtocolError(f"unknown protocol {name!r}")
    _REGISTRY.pop(canonical, None)
    for key in [k for k, v in _LOOKUP.items() if v == canonical]:
        del _LOOKUP[key]


def resolve_protocol(protocol: Union[str, ProtocolSpec]) -> ProtocolSpec:
    """Resolve a name or alias (case/underscore-insensitive) to its spec.

    Unknown names raise :class:`~repro.errors.UnknownProtocolError` with
    the closest registered match as a "did you mean?" suggestion — the
    single error path shared by the CLI, the scenario engine and the API.
    """
    if isinstance(protocol, ProtocolSpec):
        return protocol
    key = _norm(protocol)
    if key not in _LOOKUP:
        discover_plugins()
    canonical = _LOOKUP.get(key)
    if canonical is None:
        suggestion, hint = did_you_mean(key, _LOOKUP)
        raise UnknownProtocolError(
            f"unknown protocol {protocol!r}; choose from "
            + ", ".join(protocol_names())
            + hint,
            suggestion=suggestion,
        )
    return _REGISTRY[canonical]


def protocol_names() -> Tuple[str, ...]:
    """Canonical names of all registered protocols, in registration order."""
    discover_plugins()
    return tuple(_REGISTRY)


def protocol_specs() -> List[ProtocolSpec]:
    """All registered specs, in registration order."""
    discover_plugins()
    return list(_REGISTRY.values())


def default_protocols() -> Tuple[str, ...]:
    """The default comparison set (specs with ``default_compare``)."""
    return tuple(
        spec.name for spec in protocol_specs() if spec.default_compare
    )


def deploy_protocol(
    protocol: Union[str, ProtocolSpec], ctx: DeployContext
) -> List[object]:
    """Resolve and deploy in one call (the common call-site shape)."""
    return resolve_protocol(protocol).deploy(ctx)


def parse_param_key(key: str) -> Tuple[ProtocolSpec, str]:
    """Split a dotted ``protocol.param`` sweep key and validate both halves."""
    proto_name, _, param = key.partition(".")
    spec = resolve_protocol(proto_name)
    if spec.params_type is None or param not in {
        f.name for f in dataclass_fields(spec.params_type)
    }:
        available = [row[0] for row in spec.param_fields()]
        close = closest_name(param, available)
        hint = f" — did you mean {spec.name}.{close}?" if close else ""
        raise ValidationError(
            f"protocol {spec.name!r} has no parameter {param!r} "
            f"(available: {', '.join(available) or 'none'}){hint}"
        )
    return spec, param


# -- plugin discovery -----------------------------------------------------------------


def _register_plugin_object(obj: Any, source: str) -> List[str]:
    """Register whatever a plugin hook produced; returns new names."""
    if callable(obj) and not isinstance(obj, ProtocolSpec):
        obj = obj()
    specs = list(obj) if isinstance(obj, (list, tuple)) else [obj]
    registered = []
    for spec in specs:
        if not isinstance(spec, ProtocolSpec):
            raise ValidationError(
                f"plugin {source} produced {type(spec).__name__}, "
                "expected ProtocolSpec"
            )
        if _norm(spec.name) in _LOOKUP:
            continue  # already present (built-in or earlier plugin) — keep it
        register_protocol(spec)
        registered.append(spec.name)
    return registered


def discover_plugins(force: bool = False) -> List[str]:
    """Load third-party protocol specs; returns newly registered names.

    Sources, in order: installed-package entry points in the
    ``repro.protocols`` group, then the ``REPRO_PROTOCOLS`` environment
    variable (``module:attr`` items, comma-separated).  Discovery is
    lazy and runs once per process; a broken plugin is skipped with a
    warning rather than taking the whole registry down.
    """
    global _plugins_loaded
    if _plugins_loaded and not force:
        return []
    _plugins_loaded = True
    registered = load_entry_point_plugins(
        ENTRY_POINT_GROUP, _register_plugin_object, kind="protocol"
    )
    registered += load_env_plugins(
        os.environ.get(PLUGIN_ENV, ""),
        PLUGIN_ENV,
        _register_plugin_object,
        kind="protocol",
    )
    return registered


# -- built-in protocol factories ------------------------------------------------------


def _deploy_adaptive(ctx: DeployContext) -> List[object]:
    params: AdaptiveProtocolParams = ctx.params or AdaptiveProtocolParams()
    adaptive = params.to_adaptive_parameters()
    return [
        AdaptiveBroadcast(p, ctx.network, ctx.monitor, ctx.k_target, adaptive)
        for p in ctx.processes
    ]


def _deploy_optimal(ctx: DeployContext) -> List[object]:
    params: OptimalProtocolParams = ctx.params or OptimalProtocolParams()
    return [
        OptimalBroadcast(
            p,
            ctx.network,
            ctx.monitor,
            ctx.k_target,
            recompute_at_receiver=params.recompute_at_receiver,
        )
        for p in ctx.processes
    ]


def _deploy_gossip(ctx: DeployContext) -> List[object]:
    params: GossipProtocolParams = ctx.params or GossipProtocolParams()
    gossip = GossipParameters(
        rounds=params.rounds,
        step_period=params.step_period,
        fanout=params.fanout,
    )
    return [
        GossipBroadcast(p, ctx.network, ctx.monitor, ctx.k_target, gossip)
        for p in ctx.processes
    ]


def _deploy_flooding(ctx: DeployContext) -> List[object]:
    return [
        FloodingBroadcast(p, ctx.network, ctx.monitor, ctx.k_target)
        for p in ctx.processes
    ]


def _deploy_two_phase(ctx: DeployContext) -> List[object]:
    params: TwoPhaseProtocolParams = ctx.params or TwoPhaseProtocolParams()
    two_phase = TwoPhaseParameters(
        gossip_period=params.gossip_period, rounds=params.rounds
    )
    # the "twophase" child label predates the registry; keeping it keeps
    # every historical seed stream (and warm trial cache) valid
    return [
        TwoPhaseBroadcast(
            p,
            ctx.network,
            ctx.monitor,
            ctx.k_target,
            two_phase,
            rng=ctx.rng.child("twophase", p),
        )
        for p in ctx.processes
    ]


def _deploy_gossip_pv(ctx: DeployContext) -> List[object]:
    params: GossipPVParams = ctx.params or GossipPVParams()
    return [
        GossipPVBroadcast(
            p,
            ctx.network,
            ctx.monitor,
            ctx.k_target,
            params,
            rng=ctx.rng.child("membership", p),
        )
        for p in ctx.processes
    ]


def _deploy_flooding_pv(ctx: DeployContext) -> List[object]:
    params: FloodingPVParams = ctx.params or FloodingPVParams()
    return [
        FloodingPVBroadcast(
            p,
            ctx.network,
            ctx.monitor,
            ctx.k_target,
            params,
            rng=ctx.rng.child("membership", p),
        )
        for p in ctx.processes
    ]


def _deploy_adaptive_pv(ctx: DeployContext) -> List[object]:
    params: AdaptivePVParams = ctx.params or AdaptivePVParams()
    return [
        AdaptivePVBroadcast(
            p,
            ctx.network,
            ctx.monitor,
            ctx.k_target,
            params,
            rng=ctx.rng.child("membership", p),
        )
        for p in ctx.processes
    ]


def _adaptive_scenario_defaults(spec: Any) -> Dict[str, Any]:
    return {"intervals": SCENARIO_KNOWLEDGE.intervals}


def _gossip_scenario_defaults(spec: Any) -> Dict[str, Any]:
    # scenario runs compare protocols under stress with a fixed round
    # budget; they do not re-calibrate per environment snapshot
    return {"rounds": int(spec.gossip_rounds)}


def _two_phase_scenario_defaults(spec: Any) -> Dict[str, Any]:
    # one anti-entropy opportunity per period for the whole run: with the
    # scenario default period of 2.0, rounds = max(1, duration / 2)
    period = 2.0
    return {
        "gossip_period": period,
        "rounds": max(1, int(float(spec.duration) / period)),
    }


register_protocol(
    ProtocolSpec(
        name="adaptive",
        factory=_deploy_adaptive,
        description="Section 4 adaptive algorithm (Bayesian MRT learning)",
        aliases=("adapt", "section4"),
        params_type=AdaptiveProtocolParams,
        plans=True,
        learns=True,
        scenario_defaults=_adaptive_scenario_defaults,
    )
)
register_protocol(
    ProtocolSpec(
        name="optimal",
        factory=_deploy_optimal,
        description="Algorithm 1 oracle with perfect (G, C) knowledge",
        aliases=("oracle",),
        params_type=OptimalProtocolParams,
        plans=True,
    )
)
register_protocol(
    ProtocolSpec(
        name="gossip",
        factory=_deploy_gossip,
        description="Section 5 reference gossip with ACK suppression",
        aliases=("reference",),
        params_type=GossipProtocolParams,
        needs_calibration=True,
        scenario_defaults=_gossip_scenario_defaults,
    )
)
register_protocol(
    ProtocolSpec(
        name="flooding",
        factory=_deploy_flooding,
        description="forward-once flood, the non-probabilistic baseline",
        aliases=("flood",),
        params_type=FloodingProtocolParams,
    )
)
register_protocol(
    ProtocolSpec(
        name="two-phase",
        factory=_deploy_two_phase,
        description="bimodal-style flood + anti-entropy repair baseline",
        aliases=("twophase", "bimodal"),
        params_type=TwoPhaseProtocolParams,
        needs_rng=True,
        default_compare=False,  # heavyweight baseline: opt-in via --protocols
        scenario_defaults=_two_phase_scenario_defaults,
    )
)
register_protocol(
    ProtocolSpec(
        name="gossip-pv",
        factory=_deploy_gossip_pv,
        description="Section 5 gossip stepping over a sampled partial view",
        aliases=("pv-gossip", "gossip-partial-view"),
        params_type=GossipPVParams,
        needs_rng=True,
        default_compare=False,  # partial-view family: opt-in via --protocols
        scenario_defaults=_gossip_scenario_defaults,
    )
)
register_protocol(
    ProtocolSpec(
        name="flooding-pv",
        factory=_deploy_flooding_pv,
        description="forward-once flood over a sampled partial view",
        aliases=("pv-flooding", "flooding-partial-view"),
        params_type=FloodingPVParams,
        needs_rng=True,
        default_compare=False,  # partial-view family: opt-in via --protocols
    )
)
register_protocol(
    ProtocolSpec(
        name="adaptive-pv",
        factory=_deploy_adaptive_pv,
        description="adaptive algorithm learning (Lambda_k, C_k) via a sampled view",
        aliases=("pv-adaptive", "adaptive-partial-view"),
        params_type=AdaptivePVParams,
        plans=True,
        learns=True,
        needs_rng=True,
        default_compare=False,  # partial-view family: opt-in via --protocols
        scenario_defaults=_adaptive_scenario_defaults,
    )
)
