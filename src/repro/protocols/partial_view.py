"""Partial-view broadcast protocols over the peer-sampling layer.

Each variant embeds a :class:`~repro.membership.sampler.PeerSampler` and
fans out over the *sampled view* instead of the full neighbour set:

* ``flooding-pv`` — forward-once flooding over the current view;
* ``gossip-pv`` — the Section 5 baseline with ACK suppression, but each
  step targets the sampled peers;
* ``adaptive-pv`` — the adaptive protocol whose knowledge activity
  (heartbeats) flows through the sampled view, so ``(Lambda_k, C_k)`` is
  learned through the membership overlay rather than assumed over the
  full configuration.

Views only ever contain link-neighbours (see ``repro.membership``), so
every send below respects the link layer's adjacency contract.  The
membership exchange shares the host's message stream but travels as
``MessageCategory.CONTROL`` and is handled before protocol payloads.

All three protocols are registered in ``repro.protocols.registry`` with
flattened frozen params (membership knobs + protocol knobs in one
dataclass), so ``--sweep gossip-pv.view_size=8,16,32`` flows through the
standard param/sweep/cache machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.adaptive import (
    AdaptiveBroadcast,
    AdaptiveParameters,
    HeartbeatMessage,
)
from repro.core.broadcast import MessageId, ReliableBroadcastProcess
from repro.core.knowledge import KnowledgeParameters
from repro.membership.sampler import MembershipParams, PeerSampler, ViewExchange
from repro.protocols.flooding import FloodData
from repro.protocols.gossip import GossipAck, GossipData, _GossipState
from repro.sim.monitors import BroadcastMonitor
from repro.sim.network import Network
from repro.sim.trace import MessageCategory
from repro.types import ProcessId
from repro.util.rng import RandomSource
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class FloodingPVParams(MembershipParams):
    """Flooding over the sampled view: membership knobs only."""


@dataclass(frozen=True)
class GossipPVParams(MembershipParams):
    """Gossip-over-view tunables: the Section 5 knobs plus membership."""

    rounds: int = 5
    step_period: float = 1.0
    fanout: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive_int(self.rounds, "rounds")
        check_positive(self.step_period, "step_period")
        if self.fanout is not None:
            check_positive_int(self.fanout, "fanout")


@dataclass(frozen=True)
class AdaptivePVParams(MembershipParams):
    """Adaptive-over-view tunables: knowledge knobs plus membership."""

    delta: float = 1.0
    intervals: int = 50
    tick: float = 1.0
    view_impl: str = "vector"

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive(self.delta, "delta")
        check_positive_int(self.intervals, "intervals")
        check_positive(self.tick, "tick")

    def to_adaptive_parameters(self) -> AdaptiveParameters:
        return AdaptiveParameters(
            knowledge=KnowledgeParameters(
                delta=self.delta, intervals=self.intervals, tick=self.tick
            ),
            view_impl=self.view_impl,
        )


class _SamplerHost:
    """Mixin plumbing shared by the partial-view hosts.

    Assumes the concrete class is a :class:`~repro.sim.process.SimProcess`
    and has ``self.sampler`` / ``self.membership`` set before ``on_start``.
    """

    sampler: PeerSampler
    membership: MembershipParams

    def start_membership(self) -> None:
        self.set_periodic(  # type: ignore[attr-defined]
            self.membership.exchange_period,
            "membership-exchange",
            self._membership_exchange,
        )

    def _membership_exchange(self) -> None:
        self.sampler.begin_exchange(self._send_membership)

    def _send_membership(self, peer: ProcessId, message: ViewExchange) -> bool:
        return self.send(  # type: ignore[attr-defined]
            peer, message, category=MessageCategory.CONTROL
        )

    def handle_membership(self, sender: ProcessId, payload: Any) -> bool:
        """Route a membership payload into the sampler; False otherwise."""
        if not isinstance(payload, ViewExchange):
            return False
        return self.sampler.handle(sender, payload, self._send_membership)

    @property
    def sampled_peers(self):
        return self.sampler.view_peers()


class FloodingPVBroadcast(_SamplerHost, ReliableBroadcastProcess):
    """Forward-once flooding over the sampled view."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        monitor: BroadcastMonitor,
        k_target: float,
        params: FloodingPVParams,
        *,
        rng: RandomSource,
    ) -> None:
        super().__init__(pid, network, monitor, k_target)
        self.membership = params
        self.sampler = PeerSampler(pid, self.neighbors, params, rng)

    def on_start(self) -> None:
        self.start_membership()

    def broadcast(self, payload: Any) -> MessageId:
        mid = self.next_message_id()
        message = FloodData(mid=mid, payload=payload)
        self.deliver(mid, payload)
        for q in self.sampled_peers:
            self.send(q, message, category=MessageCategory.DATA)
        return mid

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        if self.handle_membership(sender, payload):
            return
        if not isinstance(payload, FloodData):
            return
        if self.has_delivered(payload.mid):
            return
        self.deliver(payload.mid, payload.payload)
        for q in self.sampled_peers:
            if q != sender:
                self.send(q, payload, category=MessageCategory.DATA)


class GossipPVBroadcast(_SamplerHost, ReliableBroadcastProcess):
    """Section 5 gossip with ACK suppression, stepping over the view."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        monitor: BroadcastMonitor,
        k_target: float,
        params: GossipPVParams,
        *,
        rng: RandomSource,
    ) -> None:
        super().__init__(pid, network, monitor, k_target)
        self.params = params
        self.membership = params
        self.sampler = PeerSampler(pid, self.neighbors, params, rng)
        self._states: Dict[MessageId, _GossipState] = {}

    def on_start(self) -> None:
        self.start_membership()
        self.set_periodic(self.params.step_period, "gossip-step", self._step)

    def broadcast(self, payload: Any) -> MessageId:
        mid = self.next_message_id()
        message = GossipData(mid=mid, payload=payload)
        self._states[mid] = _GossipState(message, self.params.rounds)
        self.deliver(mid, payload)
        self._forward(self._states[mid])
        return mid

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        if self.handle_membership(sender, payload):
            return
        if isinstance(payload, GossipAck):
            state = self._states.get(payload.mid)
            if state is not None:
                state.excluded.add(sender)
            return
        if not isinstance(payload, GossipData):
            return
        self.send(sender, GossipAck(payload.mid), category=MessageCategory.ACK)
        state = self._states.get(payload.mid)
        if state is None:
            state = _GossipState(payload, self.params.rounds)
            self._states[payload.mid] = state
            self.deliver(payload.mid, payload.payload)
        state.excluded.add(sender)

    def _step(self) -> None:
        for state in self._states.values():
            if state.rounds_left > 0:
                self._forward(state)

    def _forward(self, state: _GossipState) -> None:
        state.rounds_left -= 1
        targets = [q for q in self.sampled_peers if q not in state.excluded]
        if self.params.fanout is not None and len(targets) > self.params.fanout:
            targets = targets[: self.params.fanout]
        for q in targets:
            self.send(q, state.message, category=MessageCategory.DATA)


class AdaptivePVBroadcast(_SamplerHost, AdaptiveBroadcast):
    """Adaptive broadcast whose knowledge activity rides the sampled view.

    Heartbeats target the sampled peers instead of the full neighbour
    set, so ``(Lambda_k, C_k)`` — and therefore every broadcast plan —
    is learned through the membership overlay.  As the view rotates the
    approximation still converges toward the stable ``(G, C)``, just at
    the pace the peer-sampling policies allow.
    """

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        monitor: BroadcastMonitor,
        k_target: float,
        params: AdaptivePVParams,
        *,
        rng: RandomSource,
    ) -> None:
        super().__init__(
            pid, network, monitor, k_target, params.to_adaptive_parameters()
        )
        self.membership = params
        self.sampler = PeerSampler(pid, self.neighbors, params, rng)

    def on_start(self) -> None:
        super().on_start()
        self.start_membership()

    def _heartbeat_round(self) -> None:
        self.view.staleness_sweep(self.now)
        snapshot = self.view.emit_heartbeat(self.now)
        message = HeartbeatMessage(snapshot)
        for q in self.sampled_peers:
            self.send(q, message, category=MessageCategory.HEARTBEAT)
            self._heartbeats_sent += 1

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        if self.handle_membership(sender, payload):
            return
        super().on_message(sender, payload)
