"""Deterministic flooding — the classic non-probabilistic baseline.

Every process forwards each new message exactly once to all neighbours
except the one it arrived from (related work [8] compares gossip against
deterministic flooding).  With lossless links this reaches everyone with
``2m - (n-1)``-ish messages; with losses it has no retransmission, so its
delivery ratio degrades — which is precisely the gap retransmitting
protocols close.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.broadcast import MessageId, ReliableBroadcastProcess
from repro.sim.trace import MessageCategory
from repro.types import ProcessId


@dataclass(frozen=True)
class FloodData:
    """A flooded application message."""

    mid: MessageId
    payload: Any


class FloodingBroadcast(ReliableBroadcastProcess):
    """Forward-once flooding (no acks, no retransmissions)."""

    def broadcast(self, payload: Any) -> MessageId:
        mid = self.next_message_id()
        message = FloodData(mid=mid, payload=payload)
        self.deliver(mid, payload)
        for q in self.neighbors:
            self.send(q, message, category=MessageCategory.DATA)
        return mid

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        if not isinstance(payload, FloodData):
            return
        if self.has_delivered(payload.mid):
            return
        self.deliver(payload.mid, payload.payload)
        for q in self.neighbors:
            if q != sender:
                self.send(q, payload, category=MessageCategory.DATA)
