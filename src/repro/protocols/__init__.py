"""Baseline diffusion protocols the paper compares against or cites.

* :mod:`repro.protocols.gossip` — the Section 5 reference algorithm:
  step-synchronous forwarding with ACK suppression, run for a round count
  calibrated to the target reliability.
* :mod:`repro.protocols.flooding` — deterministic flood (each process
  forwards once to all neighbours), the classic non-probabilistic
  baseline of [8].
* :mod:`repro.protocols.twophase` — a bimodal-multicast-style two-phase
  protocol (unreliable gossip + anti-entropy repair), after [2] in the
  related work, used in extended comparisons.
"""

from repro.protocols.flooding import FloodingBroadcast
from repro.protocols.gossip import (
    GossipBroadcast,
    GossipParameters,
    calibrate_rounds,
)
from repro.protocols.twophase import TwoPhaseBroadcast, TwoPhaseParameters

__all__ = [
    "GossipBroadcast",
    "GossipParameters",
    "calibrate_rounds",
    "FloodingBroadcast",
    "TwoPhaseBroadcast",
    "TwoPhaseParameters",
]
