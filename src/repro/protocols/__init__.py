"""Diffusion protocols: the registry plus the baseline implementations.

* :mod:`repro.protocols.registry` — the protocol registry: every
  comparable protocol stack (the paper's adaptive algorithm, the optimal
  oracle and the baselines below) is a :class:`ProtocolSpec` with a
  uniform ``factory(ctx)``, a typed parameter dataclass and capability
  flags; third-party protocols plug in via ``repro.protocols`` entry
  points or :func:`register_protocol`.
* :mod:`repro.protocols.gossip` — the Section 5 reference algorithm:
  step-synchronous forwarding with ACK suppression, run for a round count
  calibrated to the target reliability.
* :mod:`repro.protocols.flooding` — deterministic flood (each process
  forwards once to all neighbours), the classic non-probabilistic
  baseline of [8].
* :mod:`repro.protocols.twophase` — a bimodal-multicast-style two-phase
  protocol (unreliable gossip + anti-entropy repair), after [2] in the
  related work, used in extended comparisons.
"""

from repro.protocols.flooding import FloodingBroadcast
from repro.protocols.gossip import (
    GossipBroadcast,
    GossipParameters,
    calibrate_rounds,
)
from repro.protocols.registry import (
    AdaptiveProtocolParams,
    DeployContext,
    FloodingProtocolParams,
    GossipProtocolParams,
    OptimalProtocolParams,
    ProtocolSpec,
    TwoPhaseProtocolParams,
    default_protocols,
    deploy_protocol,
    discover_plugins,
    protocol_names,
    protocol_specs,
    register_protocol,
    resolve_protocol,
    unregister_protocol,
)
from repro.protocols.twophase import TwoPhaseBroadcast, TwoPhaseParameters

__all__ = [
    "GossipBroadcast",
    "GossipParameters",
    "calibrate_rounds",
    "FloodingBroadcast",
    "TwoPhaseBroadcast",
    "TwoPhaseParameters",
    # registry
    "ProtocolSpec",
    "DeployContext",
    "register_protocol",
    "unregister_protocol",
    "resolve_protocol",
    "protocol_names",
    "protocol_specs",
    "default_protocols",
    "deploy_protocol",
    "discover_plugins",
    "AdaptiveProtocolParams",
    "OptimalProtocolParams",
    "GossipProtocolParams",
    "FloodingProtocolParams",
    "TwoPhaseProtocolParams",
]
