"""The reference gossip algorithm of Section 5.

The paper's baseline: *"The execution proceeds in steps, and in each step
processes forward data messages to their neighbors.  The execution
continues until all processes have been reached with probability 0.9999 —
the exact number of steps needed ... were determined interactively.  As a
simple optimization, processes acknowledge the receipt of data messages.
Thus, when choosing the neighbors to which some data message m will be
forwarded, each process p never forwards m to its neighbor q if (a) it
has previously received m from q, or (b) it has received an
acknowledgment message from q for m."*

Implementation notes:

* Forwarding is driven by a per-process periodic step timer; every
  process holding a message retransmits it each step to all non-excluded
  neighbours (optionally capped by a ``fanout``), until the per-broadcast
  round budget ``rounds`` is exhausted.
* :func:`calibrate_rounds` automates the paper's "determined
  interactively": it finds the smallest round budget whose empirical
  all-reached frequency meets the target over a batch of seeded trials.
* Message accounting distinguishes DATA and ACK categories so experiments
  can report either (the paper's Figure 4 counts data messages; an
  ablation bench reports the ACK-inclusive ratio too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set

from repro.core.broadcast import MessageId, ReliableBroadcastProcess
from repro.errors import CalibrationError, ValidationError
from repro.sim.monitors import BroadcastMonitor
from repro.sim.network import Network
from repro.sim.trace import MessageCategory
from repro.types import ProcessId
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class GossipData:
    """A gossiped application message."""

    mid: MessageId
    payload: Any


@dataclass(frozen=True)
class GossipAck:
    """Receipt acknowledgement for ``mid`` (suppresses retransmission)."""

    mid: MessageId


@dataclass(frozen=True)
class GossipParameters:
    """Baseline tunables.

    Attributes:
        rounds: per-broadcast forwarding rounds (the paper's step count,
            calibrated per environment — see :func:`calibrate_rounds`).
        step_period: virtual-time length of one step.
        fanout: max neighbours targeted per step (None = all eligible,
            which is the paper's baseline behaviour).
    """

    rounds: int = 5
    step_period: float = 1.0
    fanout: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive_int(self.rounds, "rounds")
        check_positive(self.step_period, "step_period")
        if self.fanout is not None:
            check_positive_int(self.fanout, "fanout")


class _GossipState:
    """Per-broadcast forwarding state at one process."""

    __slots__ = ("message", "excluded", "rounds_left")

    def __init__(self, message: GossipData, rounds_left: int) -> None:
        self.message = message
        self.excluded: Set[ProcessId] = set()
        self.rounds_left = rounds_left


class GossipBroadcast(ReliableBroadcastProcess):
    """Section 5's reference gossip with ACK suppression."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        monitor: BroadcastMonitor,
        k_target: float = 0.99,
        params: Optional[GossipParameters] = None,
    ) -> None:
        super().__init__(pid, network, monitor, k_target)
        self.params = params or GossipParameters()
        self._states: Dict[MessageId, _GossipState] = {}

    def on_start(self) -> None:
        self.set_periodic(self.params.step_period, "gossip-step", self._step)

    # -- broadcast ------------------------------------------------------------------

    def broadcast(self, payload: Any) -> MessageId:
        mid = self.next_message_id()
        message = GossipData(mid=mid, payload=payload)
        self._states[mid] = _GossipState(message, self.params.rounds)
        self.deliver(mid, payload)
        self._forward(self._states[mid])  # origin forwards immediately
        return mid

    # -- reception ------------------------------------------------------------------

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        if isinstance(payload, GossipAck):
            state = self._states.get(payload.mid)
            if state is not None:
                state.excluded.add(sender)
            return
        if not isinstance(payload, GossipData):
            return
        # acknowledge every reception (even duplicates — the sender keeps
        # retransmitting until it hears an ack or runs out of rounds)
        self.send(sender, GossipAck(payload.mid), category=MessageCategory.ACK)
        state = self._states.get(payload.mid)
        if state is None:
            state = _GossipState(payload, self.params.rounds)
            self._states[payload.mid] = state
            self.deliver(payload.mid, payload.payload)
        # rule (a): never forward back to a process we received from
        state.excluded.add(sender)

    # -- stepping -------------------------------------------------------------------

    def _step(self) -> None:
        for state in self._states.values():
            if state.rounds_left > 0:
                self._forward(state)

    def _forward(self, state: _GossipState) -> None:
        state.rounds_left -= 1
        targets = [q for q in self.neighbors if q not in state.excluded]
        if self.params.fanout is not None and len(targets) > self.params.fanout:
            targets = targets[: self.params.fanout]
        for q in targets:
            self.send(q, state.message, category=MessageCategory.DATA)

    # -- introspection ---------------------------------------------------------------

    def active_broadcasts(self) -> int:
        return sum(1 for s in self._states.values() if s.rounds_left > 0)


def run_gossip_trial(
    make_network: Callable[[], Network],
    rounds: int,
    origin: ProcessId = 0,
    k_target: float = 0.99,
    step_period: float = 1.0,
    fanout: Optional[int] = None,
) -> Dict[str, float]:
    """Run one seeded gossip broadcast to completion.

    Args:
        make_network: factory producing a fresh simulator+network pair
            (the network's ``sim`` drives the run).
        rounds: forwarding round budget.
        origin: broadcasting process.
        k_target: recorded in the protocol (not used by gossip logic).
        step_period / fanout: see :class:`GossipParameters`.

    Returns:
        dict with ``reached`` (1.0 if all processes delivered),
        ``data_messages``, ``ack_messages``, ``delivery_ratio``.
    """
    # deployment goes through the protocol registry — the same
    # factory(ctx) path as scenario trials and the public API (imported
    # lazily: the registry imports this module for the factory)
    from repro.protocols.registry import (
        DeployContext,
        GossipProtocolParams,
        resolve_protocol,
    )

    network = make_network()
    monitor = BroadcastMonitor(network.graph.n)
    resolve_protocol("gossip").deploy(
        DeployContext(
            network=network,
            monitor=monitor,
            k_target=k_target,
            params=GossipProtocolParams(
                rounds=rounds, step_period=step_period, fanout=fanout
            ),
        )
    )
    network.start()
    mid_box: Dict[str, MessageId] = {}

    def kick() -> None:
        proc = network.process(origin)
        assert isinstance(proc, GossipBroadcast)
        mid_box["mid"] = proc.broadcast("m")

    network.sim.schedule(0.0, kick, name="gossip-origin")
    # rounds+2 periods cover all forwarding plus in-flight deliveries
    network.sim.run(until=(rounds + 2) * step_period)
    mid = mid_box["mid"]
    return {
        "reached": 1.0 if monitor.fully_delivered(mid) else 0.0,
        "delivery_ratio": monitor.delivery_ratio(mid),
        "data_messages": float(network.stats.sent(MessageCategory.DATA)),
        "ack_messages": float(network.stats.sent(MessageCategory.ACK)),
    }


def calibrate_rounds(
    make_network: Callable[[int], Network],
    k_target: float,
    trials: int = 100,
    max_rounds: int = 64,
    origin: ProcessId = 0,
    fanout: Optional[int] = None,
) -> int:
    """Find the smallest round budget meeting ``k_target`` empirically.

    The paper tuned the step count "interactively" until all processes
    were reached with the target probability; this automates the same
    search.  ``make_network(trial_index)`` must build an independently
    seeded network per trial.

    Returns:
        The smallest ``rounds`` whose all-reached frequency over
        ``trials`` runs is >= ``k_target``.

    Raises:
        CalibrationError: if ``max_rounds`` is insufficient.
    """
    if not 0.0 < k_target < 1.0:
        raise ValidationError(f"k_target must be in (0,1), got {k_target}")
    check_positive_int(trials, "trials")
    rounds = 1
    while rounds <= max_rounds:
        reached = 0
        for t in range(trials):
            outcome = run_gossip_trial(
                lambda t=t: make_network(t),
                rounds=rounds,
                origin=origin,
                k_target=k_target,
                fanout=fanout,
            )
            reached += int(outcome["reached"])
        if reached / trials >= k_target:
            return rounds
        rounds += 1 if rounds < 8 else 2  # coarser steps once large
    raise CalibrationError(
        f"gossip did not reach K={k_target} within {max_rounds} rounds"
    )
