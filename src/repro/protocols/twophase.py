"""Two-phase gossip: unreliable dissemination + anti-entropy repair.

The related-work protocol of [2] (Bimodal Multicast) proceeds in two
phases: an unreliable best-effort flood, then periodic anti-entropy
rounds in which processes exchange message-id digests with a random
neighbour and request anything they are missing.  Implemented here as an
extended baseline: it eventually delivers everywhere like the adaptive
algorithm, but pays digest traffic instead of exploiting link
reliability knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional

from repro.core.broadcast import MessageId, ReliableBroadcastProcess
from repro.sim.monitors import BroadcastMonitor
from repro.sim.network import Network
from repro.sim.trace import MessageCategory
from repro.types import ProcessId
from repro.util.rng import RandomSource
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class TpData:
    """Phase-one (flood) or repair payload."""

    mid: MessageId
    payload: Any


@dataclass(frozen=True)
class TpDigest:
    """Anti-entropy digest: the sender's known message ids."""

    known: FrozenSet[MessageId]


@dataclass(frozen=True)
class TpRequest:
    """Retransmission request for specific message ids."""

    wanted: FrozenSet[MessageId]


@dataclass(frozen=True)
class TwoPhaseParameters:
    """Anti-entropy tunables.

    Attributes:
        gossip_period: interval between digest exchanges.
        rounds: number of anti-entropy rounds to run per process.
    """

    gossip_period: float = 1.0
    rounds: int = 10

    def __post_init__(self) -> None:
        check_positive(self.gossip_period, "gossip_period")
        check_positive_int(self.rounds, "rounds")


class TwoPhaseBroadcast(ReliableBroadcastProcess):
    """Bimodal-style two-phase reliable broadcast."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        monitor: BroadcastMonitor,
        k_target: float = 0.99,
        params: Optional[TwoPhaseParameters] = None,
        rng: Optional[RandomSource] = None,
    ) -> None:
        super().__init__(pid, network, monitor, k_target)
        self.params = params or TwoPhaseParameters()
        self._rng = (rng or RandomSource("twophase", pid)).child("peer")
        self._messages: Dict[MessageId, Any] = {}
        self._rounds_done = 0

    def on_start(self) -> None:
        self.set_periodic(
            self.params.gossip_period, "anti-entropy", self._anti_entropy
        )

    # -- phase one: best-effort flood ---------------------------------------------

    def broadcast(self, payload: Any) -> MessageId:
        mid = self.next_message_id()
        self._store_and_deliver(mid, payload)
        for q in self.neighbors:
            self.send(q, TpData(mid, payload), category=MessageCategory.DATA)
        return mid

    def _store_and_deliver(self, mid: MessageId, payload: Any) -> None:
        if mid not in self._messages:
            self._messages[mid] = payload
            self.deliver(mid, payload)

    # -- phase two: anti-entropy ----------------------------------------------------

    def _anti_entropy(self) -> None:
        if self._rounds_done >= self.params.rounds or not self.neighbors:
            return
        self._rounds_done += 1
        peer = self._rng.choice(self.neighbors)
        digest = TpDigest(known=frozenset(self._messages))
        self.send(peer, digest, category=MessageCategory.CONTROL)

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        if isinstance(payload, TpData):
            first = payload.mid not in self._messages
            self._store_and_deliver(payload.mid, payload.payload)
            if first:
                for q in self.neighbors:
                    if q != sender:
                        self.send(q, payload, category=MessageCategory.DATA)
            return
        if isinstance(payload, TpDigest):
            missing = frozenset(
                mid for mid in payload.known if mid not in self._messages
            )
            if missing:
                self.send(
                    sender, TpRequest(wanted=missing), category=MessageCategory.CONTROL
                )
            # symmetric push: send anything the peer is missing
            surplus = [mid for mid in self._messages if mid not in payload.known]
            for mid in surplus:
                self.send(
                    sender, TpData(mid, self._messages[mid]),
                    category=MessageCategory.DATA,
                )
            return
        if isinstance(payload, TpRequest):
            for mid in payload.wanted:
                if mid in self._messages:
                    self.send(
                        sender, TpData(mid, self._messages[mid]),
                        category=MessageCategory.DATA,
                    )
