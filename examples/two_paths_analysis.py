#!/usr/bin/env python
"""Figure 1's two-path model: closed form, simulation, and the break-even.

Reproduces the paper's motivating computation (Appendix A): two nodes,
two independent paths with losses L and alpha*L.  Prints the k1/k0 ratio
table (Figure 1), validates one point by Monte-Carlo simulation, and
shows the message budgets both strategies need for a target reliability.

Run:  python examples/two_paths_analysis.py
"""

from repro import RandomSource, ratio_series
from repro.analysis.two_paths import (
    adaptive_reach,
    gossip_reach,
    message_ratio,
    required_messages,
    simulate_two_paths,
)
from repro.util.tables import line_plot


def main():
    table = ratio_series()
    print(table.render())
    print()
    print(line_plot(table, height=12))

    print("\npaper anchor: alpha=10, L=1e-4 ->", f"{message_ratio(1e-4, 10):.3f}")

    # Monte-Carlo cross-check of the closed forms
    loss, alpha, k = 0.05, 4.0, 6
    sim_gossip = simulate_two_paths(
        loss, alpha, k, "gossip", RandomSource("example"), trials=40_000
    )
    sim_adaptive = simulate_two_paths(
        loss, alpha, k, "adaptive", RandomSource("example"), trials=40_000
    )
    print(f"\nMonte-Carlo check (L={loss}, alpha={alpha}, k={k}):")
    print(
        f"  gossip:   analytic {gossip_reach(loss, alpha, k):.5f}  "
        f"simulated {sim_gossip:.5f}"
    )
    print(
        f"  adaptive: analytic {adaptive_reach(loss, k):.5f}  "
        f"simulated {sim_adaptive:.5f}"
    )

    # message budgets for a fixed reliability target
    print("\nmessages needed for K=0.9999:")
    for loss in (0.01, 0.05, 0.2):
        k1 = required_messages(loss, 0.9999)
        print(
            f"  L={loss:4}: adaptive needs {k1} messages on the best path; "
            f"gossip pays ~{k1 / message_ratio(loss, 4.0):.1f} "
            f"for the same reliability at alpha=4"
        )


if __name__ == "__main__":
    main()
