#!/usr/bin/env python
"""Watch the adaptive protocol's knowledge converge, live.

Runs the knowledge activity (Algorithm 4) on a lossy ring and samples the
estimate errors over time: topology discovery completes within a
diameter's worth of heartbeats, while the Bayesian loss estimates tighten
like 1/sqrt(observations).  Prints an error trace, a terminal sparkline,
and the convergence time under two criteria (posterior-mean tolerance and
the paper's "right probability interval" MAP criterion).

Run:  python examples/convergence_monitor.py
"""

from repro import (
    AdaptiveBroadcast,
    AdaptiveParameters,
    BroadcastMonitor,
    Configuration,
    ConvergenceCriterion,
    KnowledgeParameters,
    Network,
    RandomSource,
    Simulator,
    estimate_errors,
    ring,
    views_converged,
)
from repro.analysis.convergence import convergence_profile
from repro.util.tables import render_table, sparkline

N, LOSS = 16, 0.05
SAMPLE_EVERY = 25.0
HORIZON = 2500.0


def main():
    graph = ring(N)
    config = Configuration.uniform(graph, crash=0.0, loss=LOSS)
    sim = Simulator()
    network = Network(sim, config, RandomSource("convergence-monitor"))
    monitor = BroadcastMonitor(graph.n)
    params = AdaptiveParameters(
        knowledge=KnowledgeParameters(delta=1.0, intervals=100, tick=1.0)
    )
    nodes = [
        AdaptiveBroadcast(p, network, monitor, 0.99, params)
        for p in graph.processes
    ]
    network.start()
    views = [node.view for node in nodes]

    point_criterion = ConvergenceCriterion(mode="point", point_tolerance=0.02)
    map_criterion = ConvergenceCriterion(mode="map", tolerance_intervals=1)

    samples = []
    converged = {"point": None, "map": None}
    t = 0.0
    while t < HORIZON:
        t += SAMPLE_EVERY
        sim.run(until=t)
        errors = estimate_errors(views[0], config)
        samples.append((t, errors["link_mae"], errors["known_links"]))
        if converged["point"] is None and views_converged(views, config, point_criterion):
            converged["point"] = t
        if converged["map"] is None and views_converged(views, config, map_criterion):
            converged["map"] = t
        if all(v is not None for v in converged.values()):
            break

    rows = [
        [f"{t:.0f}", f"{mae:.4f}", f"{int(known)}/{graph.link_count}"]
        for t, mae, known in samples[:: max(1, len(samples) // 12)]
    ]
    print(
        render_table(
            ["time", "link estimate MAE (view of p0)", "links known"],
            rows,
            title=f"knowledge convergence on a {N}-ring, L={LOSS}",
        )
    )
    print("\nlink MAE over time:", sparkline([s[1] for s in samples]))
    profile = convergence_profile(
        [(t, mae) for t, mae, _ in samples], threshold=0.02
    )
    print(f"p0's own estimates within 0.02 from: t = {profile:.0f}")
    print(
        f"ALL processes converged (point, tol 0.02): "
        f"t = {converged['point'] or float('nan')}"
    )
    print(
        f"ALL processes converged (MAP interval ±1): "
        f"t = {converged['map'] or float('nan')}"
    )
    print(
        "\nmessages per link so far: "
        f"{network.stats.sent() / graph.link_count:.0f} "
        "(the y-axis of the paper's Figures 5/6)"
    )


if __name__ == "__main__":
    main()
