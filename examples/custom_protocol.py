#!/usr/bin/env python
"""Write your own diffusion protocol — no repro source file changes.

Defines a TTL-bounded flood ("ttl-flood"): like the flooding baseline,
but every message carries a hop budget, so coverage (and cost) is capped
by the ``ttl`` parameter.  The protocol plugs into everything through a
single :class:`repro.ProtocolSpec`:

* ``repro.api.run_trial`` / ``run_scenario`` / ``compare`` — in-process
  registration via :func:`repro.register_protocol` (this script);
* the CLI, without installing anything::

      REPRO_PROTOCOLS=custom_protocol:SPEC \\
      PYTHONPATH=examples:src python -m repro scenario run partition-heal \\
          --protocols ttl-flood,flooding --scale quick

* installed packages: declare the same ``SPEC`` under the
  ``[project.entry-points."repro.protocols"]`` group instead.

Run:  python examples/custom_protocol.py
"""

from dataclasses import dataclass

import repro.api as api
from repro import (
    DeployContext,
    MessageCategory,
    ProtocolSpec,
    ReliableBroadcastProcess,
    register_protocol,
)
from repro.util.validation import check_positive_int


# -- the protocol ---------------------------------------------------------------------


@dataclass(frozen=True)
class TtlFloodMessage:
    """A flooded message with a remaining hop budget."""

    mid: object
    payload: object
    ttl: int


@dataclass(frozen=True)
class TtlFloodParams:
    """Tunables of the TTL flood (JSON-able, sweepable as ttl-flood.ttl)."""

    ttl: int = 4

    def __post_init__(self) -> None:
        check_positive_int(self.ttl, "ttl")


class TtlFloodBroadcast(ReliableBroadcastProcess):
    """Forward-once flooding, stopped after ``ttl`` hops."""

    def __init__(self, pid, network, monitor, k_target=0.99, ttl=4):
        super().__init__(pid, network, monitor, k_target)
        self.ttl = ttl

    def broadcast(self, payload):
        mid = self.next_message_id()
        self.deliver(mid, payload)
        message = TtlFloodMessage(mid=mid, payload=payload, ttl=self.ttl)
        for q in self.neighbors:
            self.send(q, message, category=MessageCategory.DATA)
        return mid

    def on_message(self, sender, payload):
        if not isinstance(payload, TtlFloodMessage):
            return
        if not self.deliver(payload.mid, payload.payload):
            return
        if payload.ttl <= 1:
            return
        onward = TtlFloodMessage(
            mid=payload.mid, payload=payload.payload, ttl=payload.ttl - 1
        )
        for q in self.neighbors:
            if q != sender:
                self.send(q, onward, category=MessageCategory.DATA)


# -- the registry descriptor ----------------------------------------------------------


def _deploy(ctx: DeployContext):
    params = ctx.params or TtlFloodParams()
    return [
        TtlFloodBroadcast(p, ctx.network, ctx.monitor, ctx.k_target, params.ttl)
        for p in ctx.processes
    ]


#: Point REPRO_PROTOCOLS or a "repro.protocols" entry point at this.
SPEC = ProtocolSpec(
    name="ttl-flood",
    factory=_deploy,
    description="flooding with a per-message hop budget (example plugin)",
    aliases=("ttlflood",),
    params_type=TtlFloodParams,
)


def main() -> None:
    register_protocol(SPEC)
    print("registered protocols:", ", ".join(api.protocol_names()))

    # one seeded trial, typed result
    trial = api.run_trial("partition-heal", "ttl-flood", scale="quick")
    print(
        f"single trial: delivery={trial.delivery_ratio:.3f} "
        f"data_messages={trial.data_messages:.0f}"
    )

    # head-to-head with the unbounded flood, sweeping the hop budget
    comparison = api.compare(
        ["ttl-flood", "flooding"],
        scenario="partition-heal",
        scale="quick",
        trials=2,
        params={"ttl-flood": {"ttl": 2}},
    )
    print()
    print(comparison.render())
    tight = comparison.row("ttl-flood")
    full = comparison.row("flooding")
    print()
    print(
        f"ttl=2 flood spends {tight.data_messages:.0f} data messages vs "
        f"{full.data_messages:.0f} unbounded "
        f"({tight.delivery_ratio:.3f} vs {full.delivery_ratio:.3f} delivery)"
    )


if __name__ == "__main__":
    main()
