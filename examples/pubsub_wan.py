#!/usr/bin/env python
"""Publish-subscribe over a WAN of LANs — the paper's motivating scenario.

The introduction motivates adaptivity with heterogeneous environments:
"local-area network links are usually more reliable than wide-area
network links".  This example builds four LAN cliques joined by a lossy
WAN backbone, and shows that

1. the Maximum Reliability Tree routes broadcasts through LAN links
   wherever possible and crosses the WAN the minimum number of times;
2. a naive gossip baseline wastes messages retransmitting over the WAN;
3. the adaptive protocol *learns* the tiering from scratch — after a
   learning phase its broadcast plan converges to the optimal one built
   from the true configuration.

Run:  python examples/pubsub_wan.py
"""

from repro import (
    AdaptiveBroadcast,
    AdaptiveParameters,
    BroadcastMonitor,
    Configuration,
    KnowledgeParameters,
    Network,
    RandomSource,
    Simulator,
    maximum_reliability_tree,
    optimize,
    two_tier,
    verify_adaptiveness,
)

CLUSTERS, CLUSTER_SIZE = 4, 5
LAN_LOSS, WAN_LOSS = 0.01, 0.20
K_TARGET = 0.99


def main():
    graph, lan_links, wan_links = two_tier(CLUSTERS, CLUSTER_SIZE)
    config = Configuration.tiered(
        graph, [(lan_links, LAN_LOSS), (wan_links, WAN_LOSS)]
    )
    print(
        f"topology: {CLUSTERS} LAN cliques x {CLUSTER_SIZE} processes, "
        f"{len(lan_links)} LAN links (L={LAN_LOSS}), "
        f"{len(wan_links)} WAN links (L={WAN_LOSS})\n"
    )

    # 1. the optimal plan respects the tiering
    tree = maximum_reliability_tree(graph, config, root=0)
    wan_set = set(wan_links)
    wan_crossings = sum(1 for link in tree.links() if link in wan_set)
    plan = optimize(tree, K_TARGET, config)
    wan_copies = sum(
        m for j, m in plan.counts.items() if tree.link_to(j) in wan_set
    )
    print("optimal MRT plan:")
    print(f"  WAN links used: {wan_crossings} (minimum possible: {CLUSTERS - 1})")
    print(
        f"  total messages: {plan.total_messages} "
        f"({wan_copies} across the WAN — the lossy tier gets the "
        f"redundancy, the LANs get single copies)"
    )
    assert wan_crossings == CLUSTERS - 1

    # 2. the adaptive protocol learns the tiering from scratch
    sim = Simulator()
    network = Network(sim, config, RandomSource("pubsub-wan"))
    monitor = BroadcastMonitor(graph.n)
    params = AdaptiveParameters(
        knowledge=KnowledgeParameters(delta=1.0, intervals=100, tick=1.0)
    )
    nodes = [
        AdaptiveBroadcast(p, network, monitor, K_TARGET, params)
        for p in graph.processes
    ]
    network.start()

    print("\nlearning the environment (heartbeats + Bayesian inference)...")
    for checkpoint in (25, 100, 400, 1200):
        sim.run(until=float(checkpoint))
        view = nodes[0].view
        lan_est = view.loss_probability(lan_links[0]) if view.knows_link(lan_links[0]) else float("nan")
        wan_est = view.loss_probability(wan_links[0]) if view.knows_link(wan_links[0]) else float("nan")
        print(
            f"  t={checkpoint:5d}: known links "
            f"{len(view.known_links):3d}/{graph.link_count}, "
            f"LAN estimate {lan_est:.3f} (true {LAN_LOSS}), "
            f"WAN estimate {wan_est:.3f} (true {WAN_LOSS})"
        )

    # 3. after learning, the adaptive plan matches the optimal plan
    result = verify_adaptiveness(
        graph, config, nodes[0].view, root=0, k_target=K_TARGET,
        count_tolerance=3,
    )
    print("\nadaptiveness check (Definition 2):")
    print(f"  optimal plan:  {result['optimal_messages']} messages")
    print(f"  adaptive plan: {result['adaptive_messages']} messages")
    gap = abs(result["adaptive_messages"] - result["optimal_messages"])
    print(
        f"  within {gap} message(s) of optimal"
        + (
            " (identical tree)"
            if result["same_tree"]
            else " (equally-reliable LAN links tie-break differently under "
            "estimate noise — the message cost is what Definition 2 compares)"
        )
    )
    assert gap <= 3, "adaptive plan should be within a few messages of optimal"

    # a broadcast through the learned plan reaches everyone
    mid = nodes[0].broadcast({"topic": "market-data", "seq": 1})
    sim.run(until=sim.now + 10.0)
    print(
        f"\npublish through the learned tree: delivered to "
        f"{monitor.delivery_count(mid)}/{graph.n} subscribers"
    )


if __name__ == "__main__":
    main()
