#!/usr/bin/env python
"""Publish-subscribe over a WAN of LANs — the paper's motivating scenario.

The introduction motivates adaptivity with heterogeneous environments:
"local-area network links are usually more reliable than wide-area
network links".  This example builds on the ``wan-brownout`` scenario
from the registry (``repro.scenario``) — four LAN cliques joined by a
lossy WAN backbone whose backbone browns out mid-run — and shows that

1. the Maximum Reliability Tree routes broadcasts through LAN links
   wherever possible and crosses the WAN the minimum number of times;
2. the adaptive protocol *learns* the tiering from scratch — after a
   learning phase its broadcast plan converges to the optimal one built
   from the true configuration;
3. when the scenario's dynamics timeline degrades the WAN tier, the
   same knowledge activity notices and re-tracks the change.

Run:  python examples/pubsub_wan.py
"""

from repro import (
    AdaptiveBroadcast,
    AdaptiveParameters,
    BroadcastMonitor,
    DynamicsDriver,
    KnowledgeParameters,
    Network,
    RandomSource,
    Simulator,
    build_scenario,
    maximum_reliability_tree,
    optimize,
    verify_adaptiveness,
)
from repro.experiments.runner import current_scale, scaled

CLUSTERS, CLUSTER_SIZE = 4, 5


def deploy(spec, graph, config, seed):
    """Adaptive stack at the scenario's reliability target ``K``."""
    sim = Simulator()
    network = Network(sim, config, RandomSource("pubsub-wan", seed))
    monitor = BroadcastMonitor(graph.n)
    params = AdaptiveParameters(
        knowledge=KnowledgeParameters(delta=1.0, intervals=100, tick=1.0)
    )
    nodes = [
        AdaptiveBroadcast(p, network, monitor, spec.k_target, params)
        for p in graph.processes
    ]
    return network, monitor, nodes


def main():
    # the registry scenario provides the topology, the tiered base
    # configuration *and* the brownout timeline as one declarative spec
    scale = scaled(current_scale("quick"), n=CLUSTERS * CLUSTER_SIZE)
    spec = build_scenario("wan-brownout", scale)
    graph, tiers = spec.topology.build_with_tiers()
    lan_links, wan_links = list(tiers["lan"]), list(tiers["wan"])
    config = spec.environment.base_configuration(graph, tiers)
    lan_loss = spec.environment.loss
    wan_loss = spec.environment.wan_loss
    print(
        f"scenario '{spec.name}': {CLUSTERS} LAN cliques x "
        f"{CLUSTER_SIZE} processes, "
        f"{len(lan_links)} LAN links (L={lan_loss}), "
        f"{len(wan_links)} WAN links (L={wan_loss})\n"
    )

    # 1. the optimal plan respects the tiering
    tree = maximum_reliability_tree(graph, config, root=0)
    wan_set = set(wan_links)
    wan_crossings = sum(1 for link in tree.links() if link in wan_set)
    plan = optimize(tree, spec.k_target, config)
    wan_copies = sum(
        m for j, m in plan.counts.items() if tree.link_to(j) in wan_set
    )
    print("optimal MRT plan:")
    print(f"  WAN links used: {wan_crossings} (minimum possible: {CLUSTERS - 1})")
    print(
        f"  total messages: {plan.total_messages} "
        f"({wan_copies} across the WAN — the lossy tier gets the "
        f"redundancy, the LANs get single copies)"
    )
    assert wan_crossings == CLUSTERS - 1

    # 2. the adaptive protocol learns the tiering from scratch
    network, monitor, nodes = deploy(spec, graph, config, "learn")
    network.start()
    print("\nlearning the environment (heartbeats + Bayesian inference)...")
    for checkpoint in (25, 100, 400, 1200):
        network.sim.run(until=float(checkpoint))
        view = nodes[0].view
        lan_est = view.loss_probability(lan_links[0]) if view.knows_link(lan_links[0]) else float("nan")
        wan_est = view.loss_probability(wan_links[0]) if view.knows_link(wan_links[0]) else float("nan")
        print(
            f"  t={checkpoint:5d}: known links "
            f"{len(view.known_links):3d}/{graph.link_count}, "
            f"LAN estimate {lan_est:.3f} (true {lan_loss}), "
            f"WAN estimate {wan_est:.3f} (true {wan_loss})"
        )

    # after learning, the adaptive plan matches the optimal plan
    result = verify_adaptiveness(
        graph, config, nodes[0].view, root=0, k_target=spec.k_target,
        count_tolerance=3,
    )
    print("\nadaptiveness check (Definition 2):")
    print(f"  optimal plan:  {result['optimal_messages']} messages")
    print(f"  adaptive plan: {result['adaptive_messages']} messages")
    gap = abs(result["adaptive_messages"] - result["optimal_messages"])
    print(
        f"  within {gap} message(s) of optimal"
        + (
            " (identical tree)"
            if result["same_tree"]
            else " (equally-reliable LAN links tie-break differently under "
            "estimate noise — the message cost is what Definition 2 compares)"
        )
    )
    assert gap <= 3, "adaptive plan should be within a few messages of optimal"

    # a broadcast through the learned plan reaches everyone
    mid = nodes[0].broadcast({"topic": "market-data", "seq": 1})
    network.sim.run(until=network.sim.now + 10.0)
    print(
        f"\npublish through the learned tree: delivered to "
        f"{monitor.delivery_count(mid)}/{graph.n} subscribers"
    )

    # 3. the scenario's dynamics timeline: the WAN browns out mid-run,
    # and the knowledge activity tracks the change on a fresh deployment
    network, monitor, nodes = deploy(spec, graph, config, "brownout")
    driver = DynamicsDriver(network, spec.timeline, name=spec.name, tiers=tiers)
    driver.install()
    network.start()
    probe = wan_links[0]
    print(f"\nreplaying the {spec.name} timeline (WAN degrades, then restores):")
    for checkpoint in (140, 250, spec.duration):
        network.sim.run(until=float(checkpoint))
        true_now = network.config.loss_probability(probe)
        est = nodes[0].view.loss_probability(probe)
        print(
            f"  t={int(checkpoint):5d}: true WAN loss {true_now:.2f}, "
            f"node-0 estimate {est:.3f}"
        )


if __name__ == "__main__":
    main()
