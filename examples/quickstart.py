#!/usr/bin/env python
"""Quickstart: optimal MRT broadcast vs reference gossip on one network.

Builds a 30-process, connectivity-6 system with 3% link loss, plans an
optimal broadcast (MRT + greedy copy optimisation), runs it in the
discrete-event simulator, and contrasts the message bill with the
reference gossip baseline at the same reliability target.

Run:  python examples/quickstart.py
"""

from repro import (
    BroadcastMonitor,
    Configuration,
    GossipBroadcast,
    GossipParameters,
    MessageCategory,
    Network,
    OptimalBroadcast,
    RandomSource,
    Simulator,
    k_regular,
    maximum_reliability_tree,
    optimize,
)

K_TARGET = 0.99
N, CONNECTIVITY, LOSS = 30, 6, 0.03


def plan_on_paper(graph, config):
    """The analytic side: what does the optimal algorithm intend to send?"""
    tree = maximum_reliability_tree(graph, config, root=0)
    plan = optimize(tree, K_TARGET, config)
    print(f"MRT spans {tree.size} processes through {len(tree.links())} links")
    print(
        f"optimize(K={K_TARGET}) plans {plan.total_messages} messages "
        f"({plan.increments} retransmissions beyond one copy per link), "
        f"achieving reach = {plan.achieved:.6f}"
    )
    return plan


def run_optimal(graph, config, seed):
    sim = Simulator()
    network = Network(sim, config, RandomSource("quickstart-optimal", seed))
    monitor = BroadcastMonitor(graph.n)
    processes = [
        OptimalBroadcast(p, network, monitor, K_TARGET) for p in graph.processes
    ]
    network.start()
    mid = processes[0].broadcast("hello, unreliable world")
    sim.run_until_idle()
    return (
        network.stats.sent(MessageCategory.DATA),
        monitor.delivery_ratio(mid),
    )


def run_gossip(graph, config, seed, rounds=4):
    sim = Simulator()
    network = Network(sim, config, RandomSource("quickstart-gossip", seed))
    monitor = BroadcastMonitor(graph.n)
    processes = [
        GossipBroadcast(p, network, monitor, K_TARGET, GossipParameters(rounds=rounds))
        for p in graph.processes
    ]
    network.start()
    mid = processes[0].broadcast("hello, unreliable world")
    sim.run(until=(rounds + 2) * 1.0)
    return (
        network.stats.sent(MessageCategory.DATA),
        monitor.delivery_ratio(mid),
    )


def main():
    graph = k_regular(N, CONNECTIVITY)
    config = Configuration.uniform(graph, crash=0.0, loss=LOSS)
    print(f"system: n={N}, connectivity={CONNECTIVITY}, L={LOSS}, K={K_TARGET}\n")

    plan_on_paper(graph, config)

    trials = 10
    opt_msgs = opt_reach = gos_msgs = gos_reach = 0.0
    for seed in range(trials):
        m, r = run_optimal(graph, config, seed)
        opt_msgs += m
        opt_reach += r
        m, r = run_gossip(graph, config, seed)
        gos_msgs += m
        gos_reach += r

    print(f"\nover {trials} simulated broadcasts:")
    print(
        f"  optimal MRT broadcast: {opt_msgs / trials:6.1f} data messages, "
        f"mean delivery {opt_reach / trials:.3f}"
    )
    print(
        f"  reference gossip:      {gos_msgs / trials:6.1f} data messages, "
        f"mean delivery {gos_reach / trials:.3f}"
    )
    print(
        f"  message ratio (gossip/optimal): "
        f"{gos_msgs / max(opt_msgs, 1):.2f}x"
    )


if __name__ == "__main__":
    main()
