"""Table 1 — Bayesian belief adaptation after a failure suspicion."""

import pytest

from repro.core.bayesian import BeliefEstimator
from repro.experiments.table1 import PAPER_AFTER_SUSPICION, table1_render, table1_rows
from repro.util.tables import Series, SeriesTable


def test_table1_regeneration(benchmark, record):
    rows = benchmark(table1_rows)
    # express as a SeriesTable for the shared reporting machinery
    table = SeriesTable(
        title="Table 1 - beliefs before/after one suspicion (U=5)",
        x_label="interval (1-based)",
    )
    initial = Series("P_B initial")
    after = Series("P_B after suspicion")
    for u, (_, _, b0, b1) in enumerate(rows, start=1):
        initial.add(u, b0)
        after.add(u, b1)
    table.add_series(initial)
    table.add_series(after)
    record(
        "Table 1",
        "Bayesian failure-belief adaptation (Algorithm 5)",
        table,
        notes="paper values after suspicion: 0.04/0.12/0.20/0.28/0.36 — exact match",
    )
    print()
    print(table1_render())
    assert [round(r[3], 2) for r in rows] == list(PAPER_AFTER_SUSPICION)


def test_belief_update_throughput(benchmark):
    """Micro: one Bayes update on the paper's U=100 estimator."""
    est = BeliefEstimator(100)

    def update():
        est.decrease_reliability(1)
        est.increase_reliability(1)

    benchmark(update)
    assert est.belief_sum() == pytest.approx(1.0)
