"""Micro-benchmarks of the core algorithmic kernels at paper scale.

These are throughput benchmarks (pytest-benchmark statistics matter),
not figure regenerations: the discrete-event engine's raw event
throughput, the per-message network delivery path, MRT construction,
greedy optimisation, the reach evaluation and the vectorised heartbeat
merge on a 100-process, connectivity-20 system — the heaviest
configuration of Section 5.

The engine/network benches reuse the exact workloads of ``repro bench``
(:mod:`repro.benchrunner`), so their numbers line up with the committed
``BENCH_core.json`` baseline the CI perf gate compares against.
"""

import pytest

from repro.benchrunner import bench_engine_events, bench_network_delivery

from repro.core.knowledge import KnowledgeParameters
from repro.core.mrt import maximum_reliability_tree
from repro.core.optimize import optimize
from repro.core.reach import reach
from repro.core.viewtable import VectorView
from repro.topology.configuration import Configuration
from repro.topology.generators import k_regular
from repro.util.rng import RandomSource

N = 100
K = 20


@pytest.fixture(scope="module")
def paper_graph():
    return k_regular(N, K)


@pytest.fixture(scope="module")
def paper_config(paper_graph):
    return Configuration.random_uniform(
        paper_graph,
        RandomSource("micro"),
        crash_range=(0.0, 0.05),
        loss_range=(0.0, 0.07),
    )


def test_engine_event_throughput(benchmark, track_events, scale):
    """Kernel event throughput: timer chains + cancellations, no network."""
    raw = benchmark(lambda: bench_engine_events(scale.name))
    track_events(int(raw["events"]), raw["wall_s"])
    assert raw["events"] > 0


def test_network_delivery_throughput(benchmark, track_events, scale):
    """Per-message path: send → crash/loss/latency draws → delivery."""
    raw = benchmark(lambda: bench_network_delivery(scale.name))
    track_events(int(raw["events"]), raw["wall_s"])
    assert raw["messages"] > 0


def test_mrt_construction(benchmark, paper_graph, paper_config):
    tree = benchmark(
        lambda: maximum_reliability_tree(paper_graph, paper_config, root=0)
    )
    assert tree.size == N


def test_optimize_greedy(benchmark, paper_graph, paper_config):
    tree = maximum_reliability_tree(paper_graph, paper_config, root=0)
    result = benchmark(lambda: optimize(tree, 0.9999, paper_config))
    assert result.achieved >= 0.9999


def test_reach_evaluation(benchmark, paper_graph, paper_config):
    tree = maximum_reliability_tree(paper_graph, paper_config, root=0)
    counts = optimize(tree, 0.9999, paper_config).counts
    value = benchmark(lambda: reach(tree, counts, paper_config))
    assert 0.0 < value <= 1.0


def test_vector_view_heartbeat_merge(benchmark, paper_graph):
    """One Event-1 handling at n=100, 1000 links, U=100."""
    params = KnowledgeParameters(delta=1.0, intervals=100, tick=1.0)
    receiver = VectorView(0, paper_graph, params)
    sender = VectorView(paper_graph.neighbors(0)[0], paper_graph, params)
    snapshot = sender.emit_heartbeat(1.0)

    benchmark(lambda: receiver.handle_heartbeat(snapshot, 1.0))
    assert receiver.knows_link(
        (sender.pid, paper_graph.neighbors(sender.pid)[0])
    )


def test_vector_view_snapshot(benchmark, paper_graph):
    params = KnowledgeParameters(delta=1.0, intervals=100, tick=1.0)
    view = VectorView(0, paper_graph, params)
    snapshot = benchmark(lambda: view.emit_heartbeat(1.0))
    assert snapshot.sender == 0


def test_staleness_sweep(benchmark, paper_graph):
    params = KnowledgeParameters(delta=1.0, intervals=100, tick=1.0)
    view = VectorView(0, paper_graph, params)
    clock = {"now": 0.0}

    def sweep():
        clock["now"] += 1.0
        view.staleness_sweep(clock["now"])

    benchmark(sweep)
