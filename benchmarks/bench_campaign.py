"""Campaign runner — parallel fan-out and cache-hit fast path.

Benchmarks the campaign subsystem on the Figure 4(b) workload: a
multi-worker campaign must produce the exact table the serial builder
does (asserted, not assumed), and a warm cache must make regeneration
nearly free.  At ``full`` scale the parallel run is where the paper-
sized sweep (n=100, 10 connectivities, 200 calibration trials per
point) stops being an overnight job.
"""

import os

from repro.experiments.campaign import Campaign
from repro.experiments.figure4 import figure4_table
from repro.experiments.runner import scaled
from repro.util.cache import TrialCache


def _tuned(scale):
    """Trim the sweep at non-full scales to keep the bench brisk."""
    if scale.name == "full":
        return scale
    return scaled(
        scale,
        connectivities=tuple(k for k in scale.connectivities if k <= 8),
    )


def test_campaign_parallel_figure4(benchmark, record, scale):
    workers = max(2, min(4, os.cpu_count() or 1))
    campaigns = []

    def run():
        campaign = Campaign(workers=workers)
        campaigns.append(campaign)
        return figure4_table(
            variant="loss", scale=_tuned(scale), values=(0.05,), campaign=campaign
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "Campaign parallel Figure 4b",
        f"figure4b L=0.05 via {workers}-worker campaign",
        table,
        notes=f"{campaigns[-1].executed} trials executed across {workers} workers",
    )
    # parallel execution must be bit-identical to the serial builder
    serial = figure4_table(variant="loss", scale=_tuned(scale), values=(0.05,))
    assert table.render() == serial.render()


def test_campaign_cache_hit(benchmark, record, scale, tmp_path):
    cache = TrialCache(str(tmp_path))
    warm = Campaign(cache=cache)
    figure4_table(variant="loss", scale=_tuned(scale), values=(0.05,), campaign=warm)
    assert warm.executed > 0

    campaigns = []

    def rerun():
        campaign = Campaign(cache=cache)
        campaigns.append(campaign)
        return figure4_table(
            variant="loss", scale=_tuned(scale), values=(0.05,), campaign=campaign
        )

    table = benchmark.pedantic(rerun, rounds=1, iterations=1)
    record(
        "Campaign cache hit Figure 4b",
        "figure4b L=0.05 rebuilt entirely from the on-disk trial cache",
        table,
        notes=f"{campaigns[-1].cached} cache hits, {campaigns[-1].executed} executed",
    )
    assert campaigns[-1].executed == 0
