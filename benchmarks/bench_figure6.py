"""Figure 6 — scalability: convergence effort vs system size.

Regenerates the ring-vs-random-tree comparison.  Expected shape (paper,
n=100..240): the ring's messages/link grows roughly linearly with n
(information traverses ~n/2 hops), while random trees stay nearly flat.
"""


from repro.experiments.figure6 import figure6_table


def test_figure6_scalability(benchmark, record, scale):
    table = benchmark.pedantic(
        lambda: figure6_table(scale=scale, trials=2),
        rounds=1,
        iterations=1,
    )
    record(
        "Figure 6",
        "messages/link until convergence vs number of processes",
        table,
        notes="ring grows with n; random tree stays nearly constant",
    )
    ring = next(s for s in table.series if s.name == "ring")
    tree = next(s for s in table.series if s.name == "tree")
    # ring effort grows from the smallest to the largest system
    assert ring.ys[-1] > ring.ys[0]
    # at the largest size, the ring costs more than the tree
    assert ring.ys[-1] > tree.ys[-1]
    # the tree curve grows much slower than the ring curve
    ring_growth = ring.ys[-1] / ring.ys[0]
    tree_growth = tree.ys[-1] / max(tree.ys[0], 1e-9)
    assert tree_growth < ring_growth
