"""Extension benches: Section 7's future-work directions, implemented.

1. **Heterogeneous environments** — the paper predicts larger adaptive
   gains once failure probabilities differ across the system (Section 5
   used uniform probabilities "against" the adaptive algorithm).
2. **Dynamic belief resolution** — adaptive interval refinement vs the
   fixed U=100 estimator (precision per interval spent).
3. **Knowledge piggybacking** — Section 4.1's bandwidth optimisation:
   convergence with application traffic carrying snapshots.
"""


from repro.core.bayesian import BeliefEstimator
from repro.core.refinement import AdaptiveResolutionEstimator
from repro.experiments.heterogeneous import heterogeneity_table
from repro.experiments.runner import QUICK, scaled
from repro.util.rng import RandomSource
from repro.util.tables import Series, SeriesTable

SCALE = scaled(QUICK, n=20, trials=10, calibration_trials=30, k_target=0.95)


def test_heterogeneous_environments(benchmark, record):
    table = benchmark.pedantic(
        lambda: heterogeneity_table(scale=SCALE, mean_loss=0.05),
        rounds=1,
        iterations=1,
    )
    record(
        "Extension heterogeneity",
        "reference/optimal ratio: uniform vs heterogeneous loss, equal mean",
        table,
        notes="Section 7 prediction: the heterogeneous ratio should exceed "
        "the uniform one at matching connectivity",
    )
    uniform = table.series[0].as_dict()
    hetero = table.series[1].as_dict()
    # at the densest measured connectivity the adaptive gain should be at
    # least as large in the heterogeneous environment
    densest = max(uniform)
    assert hetero[densest] >= uniform[densest] * 0.9


def test_dynamic_resolution(benchmark, record):
    """Refined estimator precision vs fixed estimators, same data."""

    def run():
        true_p = 0.03
        rng = RandomSource("bench-refine")
        observations = rng.bernoulli_array(true_p, 3000)
        estimators = {
            "fixed U=10": BeliefEstimator(10),
            "fixed U=100": BeliefEstimator(100),
            "refined (8->64)": AdaptiveResolutionEstimator(
                initial_intervals=8, max_intervals=64
            ),
        }
        for failed in observations:
            for est in estimators.values():
                if failed:
                    est.decrease_reliability(1)
                else:
                    est.increase_reliability(1)
        return {
            name: (abs(est.point_estimate() - true_p), est.intervals)
            for name, est in estimators.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = SeriesTable(
        title="Extension - dynamic belief resolution (true p=0.03, 3000 obs)",
        x_label="estimator (0=U10, 1=U100, 2=refined)",
    )
    err = Series("abs error")
    size = Series("intervals used")
    for i, (name, (error, intervals)) in enumerate(results.items()):
        err.add(i, error)
        size.add(i, intervals)
    table.add_series(err)
    table.add_series(size)
    record("Extension resolution", "dynamic interval refinement accuracy", table)
    # refinement beats the coarse estimator and stays small
    assert results["refined (8->64)"][0] <= results["fixed U=10"][0] + 1e-9
    assert results["refined (8->64)"][1] <= 64


def test_piggybacking_convergence(benchmark, record):
    """Heartbeats+piggyback vs heartbeats alone, same horizon."""
    from repro.analysis.convergence import estimate_errors
    from repro.core.adaptive import AdaptiveBroadcast, AdaptiveParameters
    from repro.core.knowledge import KnowledgeParameters
    from repro.experiments.runner import make_network
    from repro.sim.monitors import BroadcastMonitor
    from repro.topology.configuration import Configuration
    from repro.topology.generators import k_regular

    graph = k_regular(16, 4)
    config = Configuration.uniform(graph, loss=0.03)

    def run_with(piggyback):
        network = make_network(config, ("piggy", piggyback))
        monitor = BroadcastMonitor(graph.n)
        params = AdaptiveParameters(
            knowledge=KnowledgeParameters(delta=1.0, intervals=100),
            piggyback_knowledge=piggyback,
        )
        nodes = [
            AdaptiveBroadcast(p, network, monitor, 0.95, params)
            for p in graph.processes
        ]
        network.start()
        # periodic application traffic exercises the piggyback path
        def publish():
            nodes[0].broadcast("tick")

        for t in range(20, 220, 20):
            network.sim.schedule(float(t), publish)
        network.sim.run(until=250.0)
        errors = estimate_errors(nodes[4].view, config)
        return errors["link_mae"]

    def run():
        return run_with(False), run_with(True)

    plain, piggy = benchmark.pedantic(run, rounds=1, iterations=1)
    table = SeriesTable(
        title="Extension - knowledge piggybacking (k=4, L=0.03, 250 ticks)",
        x_label="mode (0=heartbeats only, 1=+piggyback)",
    )
    series = Series("link estimate MAE at t=250")
    series.add(0, plain)
    series.add(1, piggy)
    table.add_series(series)
    record("Extension piggyback", "estimate error with piggybacked knowledge", table)
    # piggybacking adds information; it must not hurt convergence
    assert piggy <= plain * 1.25
