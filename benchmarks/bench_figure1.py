"""Figure 1 — adaptive vs traditional gossip message ratio (analytic).

Regenerates the ``k1/k0`` curves for L in {1e-2, 1e-3, 1e-4} over
alpha in [1, 10] and benchmarks the closed-form computation.
"""

import pytest

from repro.analysis.two_paths import simulate_two_paths
from repro.experiments.figure1 import figure1_table
from repro.util.rng import RandomSource


def test_figure1_regeneration(benchmark, record):
    table = benchmark(figure1_table)
    record(
        "Figure 1",
        "two-path adaptive/gossip message ratio k1/k0 vs alpha",
        table,
        notes=(
            "closed form k1/k0 = 0.5*log_L(alpha) + 1 (Appendix A); "
            "paper anchors: ratio 1.0 at alpha=1, ~0.875 at alpha=10/L=1e-4"
        ),
    )
    l4 = next(s for s in table.series if s.name == "L=0.0001")
    assert l4.as_dict()[10.0] == pytest.approx(0.875, abs=1e-3)


def test_figure1_monte_carlo_crosscheck(benchmark):
    """The analytic curve is validated by simulation at one point."""

    def simulate():
        return simulate_two_paths(
            0.01, 4.0, 6, "gossip", RandomSource("bench-fig1"), trials=5000
        )

    simulated = benchmark(simulate)
    from repro.analysis.two_paths import gossip_reach

    assert simulated == pytest.approx(gossip_reach(0.01, 4.0, 6), abs=0.01)
