"""Ablation benches for the design choices called out in DESIGN.md.

1. **ACK accounting** — Figure 4's ratio with and without counting ACK
   messages against the reference algorithm (the paper counts data
   messages; ACKs roughly double the baseline's cost).
2. **Interval count U** — convergence effort as a function of the
   Bayesian resolution (the paper uses U=100 and proposes dynamic U as
   future work).
3. **Convergence tolerance** — sensitivity of the Figure 5 metric to the
   criterion (the paper leaves the criterion unspecified; this quantifies
   how much that choice moves the absolute numbers).
4. **Crash model** — i.i.d. step crashes (the paper's definition) vs
   bursty Markov outages with the same stationary down fraction.
"""


from repro.analysis.convergence import ConvergenceCriterion
from repro.experiments.figure4 import figure4_point
from repro.experiments.figure5 import convergence_messages_per_link
from repro.experiments.runner import QUICK, make_network, scaled
from repro.core.adaptive import AdaptiveBroadcast, AdaptiveParameters
from repro.core.knowledge import KnowledgeParameters
from repro.sim.monitors import BroadcastMonitor
from repro.sim.network import NetworkOptions
from repro.topology.configuration import Configuration
from repro.topology.generators import k_regular
from repro.util.tables import Series, SeriesTable

SCALE = scaled(QUICK, n=16, trials=6, calibration_trials=20, k_target=0.95)


def test_ack_accounting_ablation(benchmark, record):
    """Counting ACKs roughly doubles the reference algorithm's cost."""

    def run():
        without = figure4_point(4, 0.0, 0.03, SCALE, count_acks=False)
        with_acks = figure4_point(4, 0.0, 0.03, SCALE, count_acks=True)
        return without, with_acks

    without, with_acks = benchmark.pedantic(run, rounds=1, iterations=1)
    table = SeriesTable(
        title="Ablation - ACK accounting (connectivity 4, L=0.03)",
        x_label="connectivity",
    )
    s1 = Series("ratio (data only)")
    s1.add(4, without["ratio"])
    s2 = Series("ratio (data+acks)")
    s2.add(4, with_acks["ratio"])
    table.add_series(s1)
    table.add_series(s2)
    record("Ablation ACKs", "reference/optimal ratio with vs without ACKs", table)
    assert with_acks["ratio"] > without["ratio"] * 1.5


def test_interval_count_ablation(benchmark, record):
    """Convergence effort vs the Bayesian resolution U."""
    graph = k_regular(12, 4)
    config = Configuration.uniform(graph, loss=0.03)

    def run():
        results = []
        for intervals in (20, 50, 100):
            params = AdaptiveParameters(
                knowledge=KnowledgeParameters(delta=1.0, intervals=intervals)
            )
            effort = convergence_messages_per_link(
                graph,
                config,
                ("ablate-u", intervals),
                deadline=4000.0,
                params=params,
                criterion=ConvergenceCriterion(point_tolerance=0.025),
                strict=False,
            )
            results.append((intervals, effort))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = SeriesTable(
        title="Ablation - Bayesian interval count U (k=4, L=0.03)",
        x_label="intervals U",
    )
    series = Series("messages/link to converge")
    for intervals, effort in results:
        series.add(intervals, None if effort == float("inf") else effort)
    table.add_series(series)
    record("Ablation U", "convergence effort vs belief resolution", table)
    assert any(y is not None for y in series.ys)


def test_convergence_tolerance_ablation(benchmark, record):
    """The absolute Figure 5 numbers depend on the (unspecified) criterion."""
    graph = k_regular(12, 4)
    config = Configuration.uniform(graph, loss=0.03)

    def run():
        out = []
        for tol in (0.01, 0.02, 0.04):
            effort = convergence_messages_per_link(
                graph,
                config,
                ("ablate-tol", tol),
                deadline=6000.0,
                criterion=ConvergenceCriterion(point_tolerance=tol),
                strict=False,
            )
            out.append((tol, effort))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = SeriesTable(
        title="Ablation - convergence tolerance (k=4, L=0.03)",
        x_label="point tolerance",
    )
    series = Series("messages/link")
    for tol, effort in results:
        series.add(tol, None if effort == float("inf") else effort)
    table.add_series(series)
    record("Ablation tolerance", "criterion sensitivity of Figure 5", table)
    finite = [y for y in series.ys if y is not None]
    # looser tolerance -> no more effort
    assert finite == sorted(finite, reverse=True)


def test_crash_model_ablation(benchmark, record):
    """i.i.d. step crashes vs bursty Markov outages (same down fraction)."""
    graph = k_regular(12, 4)
    config = Configuration.uniform(graph, crash=0.03)

    def run_with(model):
        network = make_network(
            config,
            ("ablate-crash", model),
            options=NetworkOptions(crash_model=model),
        )
        monitor = BroadcastMonitor(graph.n)
        params = AdaptiveParameters(
            knowledge=KnowledgeParameters(delta=1.0, intervals=100)
        )
        nodes = [
            AdaptiveBroadcast(p, network, monitor, 0.95, params)
            for p in graph.processes
        ]
        network.start()
        network.sim.run(until=600.0)
        # mean absolute error of self estimates vs P
        return sum(
            abs(n.view.crash_probability(n.pid) - 0.03) for n in nodes
        ) / len(nodes)

    def run():
        return run_with("iid"), run_with("markov")

    iid_err, markov_err = benchmark.pedantic(run, rounds=1, iterations=1)
    table = SeriesTable(
        title="Ablation - crash model (P=0.03, 600 ticks)",
        x_label="model (0=iid, 1=markov)",
    )
    series = Series("self-estimate MAE")
    series.add(0, iid_err)
    series.add(1, markov_err)
    table.add_series(series)
    record("Ablation crash model", "self-estimation error, iid vs markov", table)
    assert iid_err < 0.05  # the paper's model estimates P well
