"""Scenario engine — dynamic-environment protocol comparison benches.

Benchmarks the scenario subsystem end to end: the partition-heal
scenario across three protocols through a multi-worker campaign (the
table is asserted bit-identical to the serial run), and the cheap
non-adaptive protocol matrix to track raw trial throughput.  Trial
counts feed ``results/BENCH_scenarios.json`` via ``track_trials``, so
trials-per-second is comparable across commits.
"""

import os

from repro.experiments.campaign import Campaign
from repro.scenario.run import scenario_report
from repro.util.cache import TrialCache


def test_scenario_partition_heal_parallel(benchmark, scale, track_trials):
    workers = max(2, min(4, os.cpu_count() or 1))
    protocols = ("adaptive", "optimal", "gossip")
    campaigns = []

    def run():
        campaign = Campaign(workers=workers)
        campaigns.append(campaign)
        return scenario_report(
            "partition-heal",
            protocols=protocols,
            scale=scale,
            trials=2,
            campaign=campaign,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    track_trials(campaigns[-1].executed)
    print()
    print(report.render())
    serial = scenario_report(
        "partition-heal", protocols=protocols, scale=scale, trials=2,
        campaign=Campaign(),
    )
    assert report.render() == serial.render()


def test_scenario_trial_throughput(benchmark, scale, track_trials):
    """Raw scenario-trial throughput on the cheap protocol stacks."""
    campaigns = []

    def run():
        campaign = Campaign()
        campaigns.append(campaign)
        return scenario_report(
            "churn-mill",
            protocols=("optimal", "gossip", "flooding"),
            scale=scale,
            trials=3,
            campaign=campaign,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    track_trials(campaigns[-1].executed)
    print()
    print(report.render())
    assert campaigns[-1].executed == 9


def test_scenario_cache_hit(benchmark, scale, tmp_path, track_trials):
    cache = TrialCache(str(tmp_path))
    protocols = ("optimal", "flooding")
    warm = Campaign(cache=cache)
    scenario_report(
        "flash-crowd", protocols=protocols, scale=scale, trials=2,
        campaign=warm,
    )
    assert warm.executed > 0

    campaigns = []

    def rerun():
        campaign = Campaign(cache=cache)
        campaigns.append(campaign)
        return scenario_report(
            "flash-crowd", protocols=protocols, scale=scale, trials=2,
            campaign=campaign,
        )

    report = benchmark.pedantic(rerun, rounds=1, iterations=1)
    track_trials(campaigns[-1].cached)
    print()
    print(report.render())
    assert campaigns[-1].executed == 0
