"""Shared fixtures for the benchmark suite.

Every bench regenerates one of the paper's tables/figures, prints the
resulting data series (so ``pytest benchmarks/ --benchmark-only`` output
contains the figures), and persists text+JSON artefacts under
``benchmarks/results/``.

Scale control: set ``REPRO_BENCH_SCALE`` to ``quick`` / ``default`` /
``full`` (paper-sized: n=100, K=0.9999) before running.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.report import ExperimentRecord, ReportWriter
from repro.experiments.runner import current_scale

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def report():
    return ReportWriter(RESULTS_DIR)


@pytest.fixture(scope="session")
def record(report, scale):
    """Persist and print one regenerated experiment."""

    def _record(experiment_id, description, table, notes=""):
        entry = ExperimentRecord(
            experiment_id=experiment_id,
            description=description,
            scale=scale.name,
            table=table,
            notes=notes,
        )
        report.add(entry)
        print()
        print(entry.render())
        return entry

    return _record
