"""Shared fixtures for the benchmark suite.

Every bench regenerates one of the paper's tables/figures, prints the
resulting data series (so ``pytest benchmarks/ --benchmark-only`` output
contains the figures), and persists text+JSON artefacts under
``benchmarks/results/``.

The session additionally emits ``results/BENCH_scenarios.json`` — a
machine-readable summary of every benchmark that ran (wall time per
bench, plus trial throughput for benches that report their trial count
through the ``track_trials`` fixture) — so the performance trajectory is
comparable across commits.  Selective runs merge into the existing file
(per-entry, this session winning per nodeid) instead of clobbering it;
every entry records the scale it was measured at, so mixed-scale
summaries stay interpretable.  Delete the file for a from-scratch
summary (stale entries of renamed benches persist until then).

Scale control: set ``REPRO_BENCH_SCALE`` to ``quick`` / ``default`` /
``full`` (paper-sized: n=100, K=0.9999) before running.
"""

from __future__ import annotations

import json
import os
import platform

import pytest

from repro import __version__
from repro.experiments.report import ExperimentRecord, ReportWriter
from repro.experiments.runner import SCALE_ENV, current_scale

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SUMMARY_PATH = os.path.join(RESULTS_DIR, "BENCH_scenarios.json")

#: nodeid -> {"wall_s": float, "trials": Optional[int]} for this session.
_BENCH_RECORDS: dict = {}


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def report():
    return ReportWriter(RESULTS_DIR)


@pytest.fixture(scope="session")
def record(report, scale):
    """Persist and print one regenerated experiment."""

    def _record(experiment_id, description, table, notes=""):
        entry = ExperimentRecord(
            experiment_id=experiment_id,
            description=description,
            scale=scale.name,
            table=table,
            notes=notes,
        )
        report.add(entry)
        print()
        print(entry.render())
        return entry

    return _record


@pytest.fixture
def track_trials(request):
    """Report how many simulation trials a bench executed.

    Calling ``track_trials(count)`` attaches the count to the test item;
    the session summary then derives trials-per-second throughput for
    this bench.
    """

    def _track(count: int) -> None:
        request.node.user_properties.append(("trials", int(count)))

    return _track


def pytest_runtest_logreport(report):
    """Collect per-bench wall time (call phase only) for the summary."""
    if report.when != "call" or not report.passed:
        return
    trials = dict(report.user_properties).get("trials")
    _BENCH_RECORDS[report.nodeid] = {
        "wall_s": round(report.duration, 4),
        # scale is per entry, not per file: merged summaries may mix
        # sessions run at different scales, and a wall time is only
        # comparable to another at the same scale
        "scale": os.environ.get(SCALE_ENV, "default"),
        "trials": trials,
        "trials_per_s": (
            round(trials / report.duration, 3)
            if trials and report.duration > 0
            else None
        ),
    }


def pytest_sessionfinish(session, exitstatus):
    """Persist the machine-readable benchmark summary."""
    if not _BENCH_RECORDS:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    benchmarks: dict = {}
    try:
        with open(SUMMARY_PATH, encoding="utf-8") as fh:
            # a selective run (pytest benchmarks/bench_x.py -k one) must
            # not clobber the other benches' entries: merge over the last
            # summary, letting this session's results win per nodeid
            benchmarks.update(json.load(fh).get("benchmarks", {}))
    except (OSError, ValueError):
        pass
    benchmarks.update(_BENCH_RECORDS)
    summary = {
        # version/scale/python describe the session that last wrote the
        # file; each merged entry carries its own scale, and
        # session_wall_s sums only this session's benches (a merged
        # total would add quick and full wall times together)
        "version": __version__,
        "scale": os.environ.get(SCALE_ENV, "default"),
        "python": platform.python_version(),
        "session_wall_s": round(
            sum(r["wall_s"] for r in _BENCH_RECORDS.values()), 4
        ),
        "benchmarks": dict(sorted(benchmarks.items())),
    }
    with open(SUMMARY_PATH, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
