"""Shared fixtures for the benchmark suite.

Every bench regenerates one of the paper's tables/figures, prints the
resulting data series (so ``pytest benchmarks/ --benchmark-only`` output
contains the figures), and persists text+JSON artefacts under
``benchmarks/results/``.

The session additionally emits ``results/BENCH_scenarios.json`` — a
machine-readable summary of every benchmark that ran (wall time per
bench, plus trial throughput for benches that report their trial count
through the ``track_trials`` fixture and event throughput via
``track_events``) — so the performance trajectory is comparable across
commits.  Selective runs merge into the existing file (per-entry, this
session winning per nodeid) instead of clobbering it; every entry
records the scale it was measured at, so mixed-scale summaries stay
interpretable.  Delete the file for a from-scratch summary (stale
entries of renamed benches persist until then).

The same per-bench records are *also* merged into the repo-root
``BENCH_core.json`` (the ``repro bench`` summary format, nodeid-keyed
entries alongside the named runner benches), so the cross-commit
performance trajectory lives in one committed file.  The CI perf gate
only compares entries present in both baseline and fresh summary, so
pytest-bench entries ride along informationally.

Scale control: set ``REPRO_BENCH_SCALE`` to ``quick`` / ``default`` /
``full`` (paper-sized: n=100, K=0.9999) before running.
"""

from __future__ import annotations

import json
import os
import platform

import pytest

from repro import __version__
from repro.experiments.report import ExperimentRecord, ReportWriter
from repro.experiments.runner import SCALE_ENV, current_scale

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SUMMARY_PATH = os.path.join(RESULTS_DIR, "BENCH_scenarios.json")

#: The repo-root cross-commit summary (``repro bench`` format).
CORE_SUMMARY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_core.json",
)

#: nodeid -> {"wall_s": float, "trials": Optional[int]} for this session.
_BENCH_RECORDS: dict = {}


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def report():
    return ReportWriter(RESULTS_DIR)


@pytest.fixture(scope="session")
def record(report, scale):
    """Persist and print one regenerated experiment."""

    def _record(experiment_id, description, table, notes=""):
        entry = ExperimentRecord(
            experiment_id=experiment_id,
            description=description,
            scale=scale.name,
            table=table,
            notes=notes,
        )
        report.add(entry)
        print()
        print(entry.render())
        return entry

    return _record


@pytest.fixture
def track_trials(request):
    """Report how many simulation trials a bench executed.

    Calling ``track_trials(count)`` attaches the count to the test item;
    the session summary then derives trials-per-second throughput for
    this bench.
    """

    def _track(count: int) -> None:
        request.node.user_properties.append(("trials", int(count)))

    return _track


@pytest.fixture
def track_events(request):
    """Report a bench's simulation-event count and measured wall time.

    ``track_events(events, wall_s)`` records the bench's own timed run
    (not the pytest ``call`` duration, which includes pytest-benchmark's
    calibration repeats), so the summary's ``events_per_s`` matches what
    one workload execution actually sustained.
    """

    def _track(events: int, wall_s: float) -> None:
        request.node.user_properties.append(("events", int(events)))
        request.node.user_properties.append(("events_wall_s", float(wall_s)))

    return _track


def pytest_runtest_logreport(report):
    """Collect per-bench wall time (call phase only) for the summary."""
    if report.when != "call" or not report.passed:
        return
    properties = dict(report.user_properties)
    trials = properties.get("trials")
    events = properties.get("events")
    events_wall = properties.get("events_wall_s") or report.duration
    record = {
        "wall_s": round(report.duration, 4),
        # scale is per entry, not per file: merged summaries may mix
        # sessions run at different scales, and a wall time is only
        # comparable to another at the same scale
        "scale": os.environ.get(SCALE_ENV, "default"),
        "trials": trials,
        "trials_per_s": (
            round(trials / report.duration, 3)
            if trials and report.duration > 0
            else None
        ),
    }
    if events:
        record["events"] = events
        record["events_per_s"] = (
            round(events / events_wall, 1) if events_wall > 0 else None
        )
    _BENCH_RECORDS[report.nodeid] = record


def pytest_sessionfinish(session, exitstatus):
    """Persist the machine-readable benchmark summary."""
    if not _BENCH_RECORDS:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    benchmarks: dict = {}
    try:
        with open(SUMMARY_PATH, encoding="utf-8") as fh:
            # a selective run (pytest benchmarks/bench_x.py -k one) must
            # not clobber the other benches' entries: merge over the last
            # summary, letting this session's results win per nodeid
            benchmarks.update(json.load(fh).get("benchmarks", {}))
    except (OSError, ValueError):
        pass
    benchmarks.update(_BENCH_RECORDS)
    summary = {
        # version/scale/python describe the session that last wrote the
        # file; each merged entry carries its own scale, and
        # session_wall_s sums only this session's benches (a merged
        # total would add quick and full wall times together)
        "version": __version__,
        "scale": os.environ.get(SCALE_ENV, "default"),
        "python": platform.python_version(),
        "session_wall_s": round(
            sum(r["wall_s"] for r in _BENCH_RECORDS.values()), 4
        ),
        "benchmarks": dict(sorted(benchmarks.items())),
    }
    with open(SUMMARY_PATH, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    _merge_into_core_summary()


def _merge_into_core_summary():
    """Fold this session's records into the repo-root ``BENCH_core.json``.

    The root file is the cross-commit performance trajectory: the named
    ``repro bench`` runner entries plus these nodeid-keyed pytest-bench
    entries, merged per key so selective sessions never clobber the
    rest.  Entries drop the ``None``-valued fields (the runner format
    omits absent metrics rather than nulling them).
    """
    from repro.benchrunner import SCHEMA_VERSION, write_summary

    benchmarks = {}
    for nodeid, record in _BENCH_RECORDS.items():
        benchmarks[nodeid] = {
            k: v for k, v in record.items() if v is not None
        }
    summary = {
        "schema": SCHEMA_VERSION,
        "repro_version": __version__,
        "scale": os.environ.get(SCALE_ENV, "default"),
        "python": platform.python_version(),
        "benchmarks": benchmarks,
    }
    try:
        write_summary(summary, CORE_SUMMARY_PATH)
    except OSError as exc:  # pragma: no cover - read-only checkout
        print(f"warning: could not update {CORE_SUMMARY_PATH}: {exc}")
