"""Figure 5 — convergence effort of the adaptive protocol.

Regenerates both panels: 5(a) varies P with L=0; 5(b) varies L with P=0.
y = heartbeat messages per link until every process has learned the
reliability probabilities (see DESIGN.md §3 notes 3/5 for the criterion).

Expected shape (paper, n=100): a few hundred messages/link; the
zero-probability curves converge fastest (topology + trivial inference),
larger probabilities take longer, and in 5(b) the L=0.05 curve is the
slowest (links are numerous and lossy links are harder to pin down).
"""


from repro.experiments.figure5 import figure5_table
from repro.experiments.runner import scaled

#: Trimmed value sets keep default runs in minutes; full scale uses the
#: paper's four curves per panel.
BENCH_CRASH_VALUES = {"quick": (0.0, 0.03), "default": (0.0, 0.01, 0.03)}
BENCH_LOSS_VALUES = {"quick": (0.0, 0.03), "default": (0.0, 0.01, 0.03)}


def _tuned(scale):
    if scale.name == "full":
        return scale, None, None
    trimmed = scaled(
        scale,
        connectivities=tuple(k for k in scale.connectivities if k <= 12),
    )
    return (
        trimmed,
        BENCH_CRASH_VALUES[scale.name],
        BENCH_LOSS_VALUES[scale.name],
    )


def test_figure5a_crash_variant(benchmark, record, scale):
    tuned, crash_values, _ = _tuned(scale)
    table = benchmark.pedantic(
        lambda: figure5_table(
            variant="crash", scale=tuned, values=crash_values, trials=2
        ),
        rounds=1,
        iterations=1,
    )
    record(
        "Figure 5a",
        "messages/link until convergence (L=0, P varies)",
        table,
        notes="P=0 converges fastest; effort grows with P",
    )
    for series in table.series:
        assert all(y is not None and y > 0 for y in series.ys)
    zero = next(s for s in table.series if s.name == "P=0")
    worst = table.series[-1]
    assert min(zero.ys) <= min(worst.ys)


def test_figure5b_loss_variant(benchmark, record, scale):
    tuned, _, loss_values = _tuned(scale)
    table = benchmark.pedantic(
        lambda: figure5_table(
            variant="loss", scale=tuned, values=loss_values, trials=2
        ),
        rounds=1,
        iterations=1,
    )
    record(
        "Figure 5b",
        "messages/link until convergence (P=0, L varies)",
        table,
        notes="paper: ~400 msgs/link at connectivity 6, L=0.05 (n=100)",
    )
    zero = next(s for s in table.series if s.name == "L=0")
    worst = table.series[-1]
    assert min(zero.ys) <= min(worst.ys)
