"""Figure 4 — reference gossip vs optimal algorithm message ratio.

Regenerates both panels: 4(a) varies the crash probability P with
reliable links; 4(b) varies the loss probability L with reliable
processes.  y = data messages of the calibrated reference gossip divided
by the optimal algorithm's ``sum(~m)``, at equal reliability target.

Expected shape (paper, n=100): ratio grows with connectivity, roughly
2-4x at connectivity 8 and 4-10x at 16-20 for the larger probabilities.
At the default bench scale (n=30, K=0.99) the ratios are smaller but the
growth with connectivity and the ordering across P/L values hold.
"""


from repro.experiments.figure4 import figure4_table
from repro.experiments.runner import scaled


def _tuned(scale):
    """Trim the sweep at non-full scales to keep the bench brisk."""
    if scale.name == "full":
        return scale
    return scaled(
        scale,
        connectivities=tuple(k for k in scale.connectivities if k <= 16),
    )


def test_figure4a_crash_variant(benchmark, record, scale):
    table = benchmark.pedantic(
        lambda: figure4_table(variant="crash", scale=_tuned(scale)),
        rounds=1,
        iterations=1,
    )
    record(
        "Figure 4a",
        "reference/optimal message ratio vs connectivity (L=0, P varies)",
        table,
        notes="paper: ratio ~4 at connectivity 16 with P=0.03 (n=100)",
    )
    for series in table.series:
        ys = [y for y in series.ys if y is not None]
        assert all(y > 0 for y in ys)
        # the reference algorithm never beats the optimal one
        assert max(ys) >= 1.0


def test_figure4b_loss_variant(benchmark, record, scale):
    table = benchmark.pedantic(
        lambda: figure4_table(variant="loss", scale=_tuned(scale)),
        rounds=1,
        iterations=1,
    )
    record(
        "Figure 4b",
        "reference/optimal message ratio vs connectivity (P=0, L varies)",
        table,
    )
    # growth with connectivity: the densest point should dominate the
    # sparsest for every curve (the paper's headline trend)
    for series in table.series:
        ys = [y for y in series.ys if y is not None]
        if len(ys) >= 2:
            assert ys[-1] >= ys[0]
